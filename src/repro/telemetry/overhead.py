"""Host-side overhead measurement for the telemetry subsystem.

Telemetry must never perturb the *simulated* outcome — the hub
schedules no events and draws no randomness, so the measured KIOPS are
bit-identical with spans off, sampled, or always-on.
:func:`measure_overhead` asserts exactly that, which makes the issue's
throughput criteria ("disabled within 3%, 1-in-100 within 10% of the
seed's bench_fig07") hold deterministically: the simulated throughput
delta is zero.

What telemetry does cost is host CPU: the extra Python executed per
instrumented op.  That quantity is measured here and bounded (coarsely)
by the CI ``telemetry-overhead`` gate.  Host timing on a shared machine
is noisy, so the measurement is built to be robust rather than precise:

- ``time.process_time`` (CPU, not wall) — immune to scheduler
  preemption;
- paired rounds — every round runs the un-instrumented baseline *and*
  each sampling rate back-to-back, and only the within-round ratio is
  kept,
  so machine-wide slowdowns (thermal/cgroup throttling) cancel;
- the median ratio across rounds — a single throttled round cannot
  drag the verdict the way a min or mean can.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, List, Optional

from repro.common.types import AccessMode, QoSMode
from repro.cluster.builder import build_cluster
from repro.cluster.experiment import attach_app, run_experiment
from repro.cluster.scale import SimScale
from repro.telemetry.hub import TelemetryConfig, attach_telemetry
from repro.workloads.patterns import RequestPattern

# The sampling configurations the overhead table reports, in order.
# None = no hub attached at all (the seed's exact code path) — the
# baseline every other rate is measured against.
DEFAULT_RATES = (None, 0, 100, 10, 1)

# A saturating demand in ops/s — far above the single-client knee.
_SATURATING = 2_000_000.0


def _rate_label(rate: Optional[int]) -> str:
    if rate is None:
        return "no hub"
    if rate == 0:
        return "disabled"
    return f"1/{rate}"


def run_saturated(
    num_clients: int = 10,
    periods: int = 4,
    scale_factor: float = 500.0,
    sample_every: Optional[int] = None,
    access: AccessMode = AccessMode.ONE_SIDED,
) -> Dict[str, object]:
    """One saturated bare-cluster run; returns KIOPS, CPU time, spans.

    ``sample_every=None`` attaches no telemetry hub at all; any other
    value attaches one with that sampling rate.
    """
    scale = SimScale(factor=scale_factor, interval_divisor=100)
    cluster = build_cluster(
        num_clients=num_clients, qos_mode=QoSMode.BARE, scale=scale,
        access=access,
    )
    hub = None
    if sample_every is not None:
        hub = attach_telemetry(
            cluster, TelemetryConfig(sample_every=sample_every)
        )
    for ctx in cluster.clients:
        attach_app(cluster, ctx, pattern=RequestPattern.BURST,
                   demand_ops=_SATURATING, access=access)
    started = time.process_time()
    result = run_experiment(cluster, warmup_periods=1,
                            measure_periods=periods)
    cpu = time.process_time() - started
    return {
        "sample": _rate_label(sample_every),
        "kiops": result.total_kiops(),
        "cpu_seconds": cpu,
        "spans_recorded": len(hub.spans) if hub is not None else 0,
        "hub": hub,
        "result": result,
    }


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def measure_overhead(
    rates=DEFAULT_RATES,
    num_clients: int = 10,
    periods: int = 8,
    scale_factor: float = 500.0,
    repeats: int = 5,
    access: AccessMode = AccessMode.ONE_SIDED,
) -> List[Dict[str, object]]:
    """Measure per-rate CPU overhead against ``rates[0]`` (see module
    docstring for why paired rounds + median).

    Returns one row per rate: ``{"sample", "kiops", "cpu_seconds",
    "overhead", "spans_recorded"}`` — ``cpu_seconds`` is the rate's
    fastest round, ``overhead`` the median within-round CPU ratio minus
    one (0.0 for the baseline rate by definition).  Raises
    ``AssertionError`` if any rate changes the simulated KIOPS —
    telemetry observing a run must not alter it.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if len(rates) < 2:
        raise ValueError("need the baseline rate plus at least one other")

    def timed(rate):
        gc.collect()  # don't bill one run for another's garbage
        return run_saturated(
            num_clients=num_clients, periods=periods,
            scale_factor=scale_factor, sample_every=rate, access=access,
        )

    timed(rates[0])  # warm-up round: imports, allocator, caches
    best: Dict[object, Dict[str, object]] = {}
    ratios: Dict[object, List[float]] = {rate: [] for rate in rates[1:]}
    for _ in range(repeats):
        base = timed(rates[0])
        prev = best.get(rates[0])
        if prev is None or base["cpu_seconds"] < prev["cpu_seconds"]:
            best[rates[0]] = base
        for rate in rates[1:]:
            run = timed(rate)
            ratios[rate].append(run["cpu_seconds"] / base["cpu_seconds"])
            prev = best.get(rate)
            if prev is None or run["cpu_seconds"] < prev["cpu_seconds"]:
                best[rate] = run

    rows: List[Dict[str, object]] = []
    for rate in rates:
        run = best[rate]
        rows.append({
            "sample": run["sample"],
            "kiops": run["kiops"],
            "cpu_seconds": run["cpu_seconds"],
            "spans_recorded": run["spans_recorded"],
            "overhead": (
                0.0 if rate == rates[0] else _median(ratios[rate]) - 1.0
            ),
        })
    baseline = rows[0]
    for row in rows:
        if row["kiops"] != baseline["kiops"]:
            raise AssertionError(
                f"telemetry perturbed the simulation: {row['sample']} "
                f"measured {row['kiops']} KIOPS vs baseline "
                f"{baseline['kiops']}"
            )
    return rows
