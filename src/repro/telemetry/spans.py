"""Causal per-op spans: the timing skeleton of one operation.

A :class:`Span` is created when an operation enters the system (engine
submit, or a bare KV call) and carries an ordered list of *marks* —
``(stage_name, timestamp)`` pairs recorded as the op crosses each
layer boundary: engine queue exit, NIC issue-pipeline exit, fabric
arrival, target-pipeline exit, server-CPU completion (two-sided), and
the return trip.  Stage *segments* are derived from consecutive marks,
so the segments partition ``[start, end]`` with no gaps or overlaps by
construction: the decomposition is exact, including any injected fault
delay (which lands inside the segment it physically delayed).

Spans are plain mutable objects shared by reference across the whole
datapath (work request, protocol message, pending-RPC table), so the
client, fabric, and server all annotate the *same* timeline — there is
no context propagation to get wrong.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class Span:
    """One operation's timeline (see module docstring).

    ``finish`` is idempotent: whichever end of the datapath observes
    the terminal event first (completion, transport failure, RPC
    deadline sweep) wins, and later marks are ignored so the recorded
    segments always partition ``[start, end]`` exactly.
    """

    __slots__ = ("span_id", "kind", "client", "key", "control",
                 "start", "end", "ok", "error", "marks")

    def __init__(self, span_id: int, kind: str, client: str, start: float,
                 key: Optional[int] = None, control: bool = False):
        self.span_id = span_id
        self.kind = kind
        self.client = client
        self.key = key
        self.control = control
        self.start = start
        self.end: Optional[float] = None
        self.ok: Optional[bool] = None
        self.error: Optional[str] = None
        self.marks: List[Tuple[str, float]] = []

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def latency(self) -> float:
        """End-to-end latency; only meaningful once finished."""
        return (self.end or self.start) - self.start

    def mark(self, stage: str, time: float) -> None:
        """Record the boundary that *ends* the ``stage`` segment.

        Marks may carry a timestamp in the span's near future (e.g. a
        pipeline's computed drain time); they must be recorded in
        non-decreasing timestamp order.  Marks after ``finish`` are
        dropped (late completions of an already-failed op).
        """
        if self.end is not None:
            return
        self.marks.append((stage, time))

    def finish(self, time: float, ok: bool = True,
               error: Optional[str] = None) -> None:
        """Close the span; the first call wins (idempotent)."""
        if self.end is not None:
            return
        self.end = time
        self.ok = ok
        self.error = error

    # ------------------------------------------------------------------
    def segments(self) -> List[Tuple[str, float, float]]:
        """The stage partition: ``(stage, seg_start, seg_end)`` triples.

        Adjacent by construction — ``segments[i].end ==
        segments[i+1].start`` — starting at ``span.start``.  If the
        final mark predates ``end`` (an op that died between stages) a
        trailing ``"tail"`` segment closes the partition.
        """
        out: List[Tuple[str, float, float]] = []
        prev = self.start
        for stage, time in self.marks:
            out.append((stage, prev, time))
            prev = time
        if self.end is not None and self.end > prev:
            out.append(("tail", prev, self.end))
        return out

    def stage_durations(self) -> List[Tuple[str, float]]:
        """``(stage, duration)`` pairs derived from :meth:`segments`."""
        return [(stage, t1 - t0) for stage, t0, t1 in self.segments()]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end is None else ("ok" if self.ok else "fail")
        return (f"Span({self.span_id}, {self.kind}, {self.client}, "
                f"{state}, marks={len(self.marks)})")


class SpanStore:
    """A bounded span collection with drop accounting.

    Mirrors :class:`~repro.sim.trace.Tracer`'s eviction policy: when
    ``max_spans`` is reached the oldest half is dropped and counted, so
    a truncated collection is never mistaken for a complete one.
    """

    def __init__(self, max_spans: int = 100_000):
        if max_spans < 2:
            raise ValueError(f"max_spans must be >= 2, got {max_spans}")
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self.started = 0

    def add(self, span: Span) -> None:
        self.started += 1
        if len(self.spans) >= self.max_spans:
            drop = len(self.spans) // 2
            self.spans = self.spans[drop:]
            self.dropped += drop
        self.spans.append(span)

    def finished(self, kind: Optional[str] = None,
                 ok: Optional[bool] = None) -> List[Span]:
        """Finished spans, optionally filtered by kind and verdict."""
        return [
            s for s in self.spans
            if s.finished
            and (kind is None or s.kind == kind)
            and (ok is None or s.ok == ok)
        ]

    def export(self) -> dict:
        """Collection state for exporters; flags truncation explicitly."""
        return {
            "started": self.started,
            "recorded": len(self.spans),
            "dropped": self.dropped,
            "complete": self.dropped == 0,
            "unfinished": sum(1 for s in self.spans if not s.finished),
        }

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)
