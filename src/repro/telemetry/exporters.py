"""Exporters: Perfetto trace JSON, metrics JSONL, ledger JSONL, tables.

Perfetto/Chrome ``trace_event`` format (loadable at ui.perfetto.dev):
each span becomes a complete ("X") slice on its client's track, with
its stage segments as nested child slices; timestamps are microseconds
of simulated time.  Metrics snapshots and the token-ledger audit
stream are newline-delimited JSON, one object per line, so they can be
tailed and post-processed with standard tooling.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.analysis import format_table
from repro.telemetry.spans import Span

_US = 1e6  # trace_event timestamps are in microseconds


def perfetto_trace(spans: Iterable[Span],
                   store_export: Optional[dict] = None) -> dict:
    """Build a ``trace_event`` JSON document from ``spans``.

    Unfinished spans are skipped (they have no duration yet); the
    span-store export — including its ``dropped`` count — rides along
    in ``otherData`` so a truncated trace is never mistaken for a
    complete one.
    """
    events: List[dict] = []
    pids: Dict[str, int] = {}
    for span in spans:
        if not span.finished:
            continue
        pid = pids.get(span.client)
        if pid is None:
            pid = len(pids) + 1
            pids[span.client] = pid
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"client {span.client}"},
            })
        tid = 2 if span.control else 1
        args = {"span_id": span.span_id, "ok": bool(span.ok)}
        if span.key is not None:
            args["key"] = span.key
        if span.error:
            args["error"] = span.error
        events.append({
            "name": span.kind, "cat": "op", "ph": "X",
            "ts": span.start * _US, "dur": span.latency * _US,
            "pid": pid, "tid": tid, "args": args,
        })
        for stage, t0, t1 in span.segments():
            events.append({
                "name": stage, "cat": "stage", "ph": "X",
                "ts": t0 * _US, "dur": (t1 - t0) * _US,
                "pid": pid, "tid": tid, "args": {"span_id": span.span_id},
            })
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    if store_export is not None:
        doc["otherData"] = {"span_store": store_export}
    return doc


def write_perfetto(path: str, spans: Iterable[Span],
                   store_export: Optional[dict] = None) -> int:
    """Write the Perfetto file; returns the number of trace events."""
    doc = perfetto_trace(spans, store_export)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])


# ----------------------------------------------------------------------
# JSONL streams
# ----------------------------------------------------------------------
def metrics_jsonl(rows: Iterable[dict]) -> str:
    """Per-period metric snapshots, one JSON object per line."""
    return "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows)


def write_metrics_jsonl(path: str, rows: Iterable[dict]) -> int:
    rows = list(rows)
    with open(path, "w") as fh:
        fh.write(metrics_jsonl(rows))
    return len(rows)


def ledger_jsonl(ledger) -> str:
    """The token-ledger audit stream, one event per line, closed-account
    balances appended as ``account`` records."""
    lines = [json.dumps(event, sort_keys=True) for event in ledger.events]
    for rec in ledger.closed_accounts:
        lines.append(json.dumps({"event": "account", **rec}, sort_keys=True))
    return "".join(line + "\n" for line in lines)


def write_ledger_jsonl(path: str, ledger) -> int:
    text = ledger_jsonl(ledger)
    with open(path, "w") as fh:
        fh.write(text)
    return text.count("\n")


# ----------------------------------------------------------------------
# Per-stage latency breakdown
# ----------------------------------------------------------------------
def stage_breakdown(spans: Iterable[Span]) -> Dict[str, dict]:
    """Aggregate finished-ok spans into per-kind, per-stage statistics.

    Returns ``{kind: {"count": n, "total_mean": s, "stages": [(stage,
    mean, max, n), ...]}}`` with stages in datapath order (order of
    first appearance across the kind's spans).
    """
    out: Dict[str, dict] = {}
    for span in spans:
        if not span.finished or not span.ok:
            continue
        entry = out.setdefault(span.kind, {
            "count": 0, "total_sum": 0.0, "stages": {}, "order": [],
        })
        entry["count"] += 1
        entry["total_sum"] += span.latency
        for stage, duration in span.stage_durations():
            if stage not in entry["stages"]:
                entry["stages"][stage] = [0, 0.0, 0.0]  # n, sum, max
                entry["order"].append(stage)
            acc = entry["stages"][stage]
            acc[0] += 1
            acc[1] += duration
            if duration > acc[2]:
                acc[2] = duration
    rendered: Dict[str, dict] = {}
    for kind, entry in out.items():
        stages = [
            (stage, acc[1] / acc[0], acc[2], acc[0])
            for stage, acc in
            ((s, entry["stages"][s]) for s in entry["order"])
        ]
        rendered[kind] = {
            "count": entry["count"],
            "total_mean": entry["total_sum"] / entry["count"],
            "stages": stages,
        }
    return rendered


def format_stage_table(spans: Iterable[Span]) -> List[str]:
    """The CLI's per-stage latency breakdown, as table lines."""
    breakdown = stage_breakdown(spans)
    rows = []
    for kind in sorted(breakdown):
        entry = breakdown[kind]
        first = True
        for stage, mean, peak, count in entry["stages"]:
            rows.append([
                kind if first else "",
                stage,
                f"{mean * _US:.3f}",
                f"{peak * _US:.3f}",
                str(count),
            ])
            first = False
        rows.append([
            kind if first else "",
            "= end-to-end",
            f"{entry['total_mean'] * _US:.3f}",
            "",
            str(entry["count"]),
        ])
    if not rows:
        return ["(no finished spans sampled)"]
    return format_table(
        ["op kind", "stage", "mean (us)", "max (us)", "samples"], rows
    )
