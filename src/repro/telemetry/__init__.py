"""``repro.telemetry``: causal spans, metrics registry, exporters.

See docs/OBSERVABILITY.md for the span model, the registry API, the
token-ledger audit stream, and the exporter formats.
"""

from repro.telemetry.exporters import (
    format_stage_table,
    ledger_jsonl,
    metrics_jsonl,
    perfetto_trace,
    stage_breakdown,
    write_ledger_jsonl,
    write_metrics_jsonl,
    write_perfetto,
)
from repro.telemetry.health import HealthTracker
from repro.telemetry.hub import TelemetryConfig, TelemetryHub, attach_telemetry
from repro.telemetry.ledger import LedgerAccount, TokenLedger
from repro.telemetry.overhead import measure_overhead, run_saturated
from repro.telemetry.registry import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from repro.telemetry.spans import Span, SpanStore

__all__ = [
    "CounterMetric",
    "GaugeMetric",
    "HealthTracker",
    "HistogramMetric",
    "LedgerAccount",
    "MetricsRegistry",
    "Span",
    "SpanStore",
    "TelemetryConfig",
    "TelemetryHub",
    "TokenLedger",
    "attach_telemetry",
    "format_stage_table",
    "ledger_jsonl",
    "measure_overhead",
    "metrics_jsonl",
    "perfetto_trace",
    "run_saturated",
    "stage_breakdown",
    "write_ledger_jsonl",
    "write_metrics_jsonl",
    "write_perfetto",
]
