"""Fail-slow ("gray failure") detection from control-plane telemetry.

A fail-slow component is the nastiest RDMA failure mode: it answers
everything — just late — so no hard error, lost heartbeat, or capacity
alarm ever fires.  The only tell is *relative*: its report latency,
capacity estimate, and completion ratio drift away from its peers'.

:class:`HealthTracker` turns the per-epoch observations the coordinator
already receives (NodeReport arrival lag, the node's adaptive capacity
estimate, aggregate completed/demand ratio) into one score per
component in (0, 1]: the minimum over available signals of
``own / peer-median`` (or its reciprocal for latency), clipped to 1.0.
A healthy symmetric cluster scores ~1.0 on every signal; a component
3x slower than its peers scores ~1/3 — comfortably below any sane
quarantine threshold — while cluster-wide load swings (which move every
peer together) leave the relative scores untouched.

The tracker is pure bookkeeping: deterministic, no simulator access,
no RNG.  The coordinator owns the quarantine *policy* (streak lengths,
derank factor, ledger events); this module only answers "how healthy
does component ``i`` look at epoch ``e``?".
"""

from __future__ import annotations

from typing import Dict, List, Optional

# Epochs of history kept per component; older observations are pruned
# so a long chaos run's tracker stays O(components).
KEEP_EPOCHS = 8


def _median(values: List[float]) -> float:
    """Deterministic median (average of middle pair for even counts)."""
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class HealthTracker:
    """Per-component, per-epoch health scores from peer comparison."""

    def __init__(self) -> None:
        # signal -> epoch -> component -> value
        self._signals: Dict[str, Dict[int, Dict[int, float]]] = {
            "latency": {}, "capacity": {}, "throughput": {},
        }
        self.observations = 0

    def observe(self, component: int, epoch: int,
                latency: Optional[float] = None,
                capacity: Optional[float] = None,
                throughput: Optional[float] = None) -> None:
        """Record one epoch's signals for ``component`` (None = absent)."""
        for name, value in (("latency", latency), ("capacity", capacity),
                            ("throughput", throughput)):
            if value is None:
                continue
            self._signals[name].setdefault(epoch, {})[component] = value
            self.observations += 1
        self._prune(epoch)

    def _prune(self, epoch: int) -> None:
        floor = epoch - KEEP_EPOCHS
        for per_epoch in self._signals.values():
            for e in [e for e in per_epoch if e < floor]:
                del per_epoch[e]

    # ------------------------------------------------------------------
    def scores(self, epoch: int) -> Dict[int, float]:
        """Score every component observed at ``epoch`` (1.0 = healthy).

        Per signal: the component's value against the *median of its
        peers* (excluding itself), clipped to 1.0 so being better than
        the median never masks being worse on another signal; the
        component's score is the minimum over signals with at least two
        observers (one peer to compare against).
        """
        out: Dict[int, float] = {}
        for name, per_epoch in self._signals.items():
            values = per_epoch.get(epoch)
            if not values or len(values) < 2:
                continue
            for component, own in values.items():
                peers = [v for c, v in values.items() if c != component]
                score = self._ratio(name, own, _median(peers))
                out[component] = min(out.get(component, 1.0), score)
        return out

    @staticmethod
    def _ratio(name: str, own: float, peer_median: float) -> float:
        if name == "latency":
            # Higher latency is worse: compare the peers' lag to ours.
            if own <= 0.0:
                return 1.0
            return min(1.0, peer_median / own)
        # Capacity/throughput: lower is worse.
        if peer_median <= 0.0:
            return 1.0
        return min(1.0, own / peer_median)
