"""The determinism guard: bit-identical simulated outputs, by hash.

The simulator's whole value rests on one property: the same scenario
and seed produce the *same* simulated history, byte for byte.  Every
hot-path optimisation (``__slots__``, cached locals, the engine's
direct-callback ticks, the NIC cost tables) is licensed by this module:
it runs a fixed scenario family on the canonical seeds and folds the
telemetry exports — the per-period metrics JSONL, the token-ledger
audit JSONL, and the experiment's result payload — into SHA-256
digests.  If an "optimisation" changes a single float or reorders a
single same-timestamp event, a digest moves and the pinned test fails.

The scenario family deliberately leans on the messy paths: each seed
drives a :func:`~repro.cluster.scenarios.faulty_qos_cluster` with a
seed-specific fault plan (control loss, delay spikes, a brownout), so
drops, retries, engine backoff, capacity dilation, and conversion all
feed the hash — not just the steady-state fast path.

``python -m repro.cluster.determinism`` regenerates the committed
reference file (``benchmarks/results/determinism_hashes.json``); the
pinned test (``tests/integration/test_determinism.py``) recomputes and
compares.  Regenerate *only* when a change intentionally alters
simulated behaviour, and say so in the commit.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

from repro.cluster.experiment import run_experiment
from repro.cluster.scale import SimScale
from repro.cluster.scenarios import (
    faulty_qos_cluster,
    paper_demands,
    reservation_set,
)
from repro.telemetry.exporters import ledger_jsonl, metrics_jsonl
from repro.telemetry.hub import TelemetryConfig, attach_telemetry

#: The canonical seeds every before/after comparison runs on.
CANONICAL_SEEDS = (11, 23, 37, 41, 53)

#: Seed -> (fault kind, fault_plan kwargs).  Distinct plans per seed so
#: the five runs exercise genuinely different dynamics: lossy control
#: planes at two rates, delayed control planes at two rates, and a
#: capacity brownout.
SEED_FAULTS = {
    11: ("control-loss", {"rate": 0.04}),
    23: ("control-loss", {"rate": 0.10}),
    37: ("delay-spike", {"rate": 0.08}),
    41: ("brownout", {"factor": 0.6}),
    53: ("delay-spike", {"rate": 0.15}),
}

#: Matches the Fig. 12 sweep's scale (benchmarks/conftest.py) so the
#: guard hashes the same arithmetic regime the speedup is measured in.
DIGEST_SCALE = SimScale(factor=500, interval_divisor=100)

_NUM_CLIENTS = 5
_TOTAL_OPS = 0.7 * 1_570_000  # 70% of C_L reserved, zipf-shaped
_POOL_OPS = 120_000.0
_WARMUP = 1
_MEASURE = 4


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _canonical_json(obj) -> str:
    # Canonical form: sorted keys, no whitespace.  Floats serialize via
    # repr (shortest round-trip since CPython 3.1), so equal bit
    # patterns give equal text on every supported interpreter.
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def determinism_digest(seed: int,
                       scale: Optional[SimScale] = None) -> Dict[str, str]:
    """Run the canonical scenario for ``seed`` and digest its outputs.

    Returns ``{"kind", "metrics", "ledger", "results", "combined"}``
    where the last four are SHA-256 hex digests.  ``combined`` is the
    one number to compare: it covers the metrics stream, the ledger
    stream, the result payload, and the ledger conservation check.
    """
    kind, fault_kwargs = SEED_FAULTS[seed]
    reservations = reservation_set("zipf", _TOTAL_OPS, _NUM_CLIENTS)
    demands = paper_demands(reservations, _POOL_OPS)
    cluster = faulty_qos_cluster(
        reservations,
        demands,
        kind=kind,
        fault_seed=seed,
        fault_kwargs=fault_kwargs,
        scale=scale or DIGEST_SCALE,
        master_seed=seed,
    )
    hub = attach_telemetry(
        cluster, TelemetryConfig(sample_every=7, ledger=True)
    )
    result = run_experiment(
        cluster, warmup_periods=_WARMUP, measure_periods=_MEASURE
    )
    for ctx in cluster.clients:
        ctx.engine.ledger_flush()

    metrics_text = metrics_jsonl(hub.period_rows)
    ledger_text = ledger_jsonl(hub.ledger)
    results_text = _canonical_json({
        "client_period_counts": result.client_period_counts,
        "client_latency": result.client_latency,
        "period_totals": result.period_totals,
        "estimator_history": result.estimator_history,
        "conservation": hub.ledger.check_conservation(),
    })
    metrics_hash = _sha256(metrics_text)
    ledger_hash = _sha256(ledger_text)
    results_hash = _sha256(results_text)
    return {
        "kind": kind,
        "metrics": metrics_hash,
        "ledger": ledger_hash,
        "results": results_hash,
        "combined": _sha256(_canonical_json(
            [metrics_hash, ledger_hash, results_hash]
        )),
    }


def digest_all(seeds=CANONICAL_SEEDS) -> Dict[str, Dict[str, str]]:
    """``{str(seed): digest}`` for every canonical seed (JSON-keyable)."""
    return {str(seed): determinism_digest(seed) for seed in seeds}


#: Seeds for the multi-node global-coordinator digest.  Two, not five:
#: each digest runs the skewed scenario twice (static + coordinated)
#: plus a coordinator-crash chaos run, so two seeds already cover the
#: rebalance, fallback, and recovery paths at acceptable suite cost.
GLOBALQOS_SEEDS = (11, 23)


def globalqos_digest(seed: int,
                     scale: Optional[SimScale] = None) -> Dict[str, str]:
    """Digest the global-coordinator scenario family for ``seed``.

    Covers the full tentpole surface: the static-vs-coordinated skew
    comparison (metrics stream, ledger stream with its ``rebalance``
    events, attainment payload) and a coordinator-crash chaos run
    (fallback, recovery, conservation verdicts).  Same shape as
    :func:`determinism_digest` so the pinned test compares both
    families uniformly.
    """
    import dataclasses

    from repro.globalqos.chaos import run_coord_chaos
    from repro.globalqos.scenario import run_skewed

    static = run_skewed(seed, False, scale=scale)
    coordinated = run_skewed(seed, True, scale=scale)
    static.pop("_cluster")
    coord_cluster = coordinated.pop("_cluster")
    hub = coord_cluster.sim.telemetry

    chaos = run_coord_chaos(seed, scale=scale)

    metrics_text = metrics_jsonl(hub.period_rows)
    ledger_text = ledger_jsonl(hub.ledger)
    results_text = _canonical_json({
        "static": static,
        "coordinated": coordinated,
        "chaos": dataclasses.asdict(chaos),
    })
    metrics_hash = _sha256(metrics_text)
    ledger_hash = _sha256(ledger_text)
    results_hash = _sha256(results_text)
    return {
        "kind": "globalqos-skew",
        "metrics": metrics_hash,
        "ledger": ledger_hash,
        "results": results_hash,
        "combined": _sha256(_canonical_json(
            [metrics_hash, ledger_hash, results_hash]
        )),
    }


def globalqos_digest_all(seeds=GLOBALQOS_SEEDS) -> Dict[str, Dict[str, str]]:
    """``{str(seed): digest}`` for every global-coordinator seed."""
    return {str(seed): globalqos_digest(seed) for seed in seeds}


#: Seeds for the partition/failover chaos digest.  Two, matching the
#: globalqos family: each run covers the asymmetric partition, the
#: standby takeover, the fencing path, and the fail-slow quarantine
#: cycle, so two seeds pin every failover code path without doubling
#: suite cost.
PARTITION_SEEDS = (11, 23)


def partition_digest(seed: int,
                     scale: Optional[SimScale] = None) -> Dict[str, str]:
    """Digest the partition/failover chaos family for ``seed``.

    One :func:`~repro.globalqos.chaos.run_partition_chaos` run, hashed
    the same way as the other families: the HA cluster's metrics
    stream (leader + standby + quarantine gauges), its ledger stream
    (``quarantine`` / ``unquarantine`` events included), and the chaos
    report payload.
    """
    import dataclasses

    from repro.globalqos.chaos import _run_partition_chaos

    report, cluster = _run_partition_chaos(
        seed, periods=36, rebalance_periods=2, fallback_after=2,
        takeover_after=2, puts_per_period=6, scale=scale,
    )
    hub = cluster.sim.telemetry

    metrics_text = metrics_jsonl(hub.period_rows)
    ledger_text = ledger_jsonl(hub.ledger)
    results_text = _canonical_json({
        "chaos": dataclasses.asdict(report),
    })
    metrics_hash = _sha256(metrics_text)
    ledger_hash = _sha256(ledger_text)
    results_hash = _sha256(results_text)
    return {
        "kind": "partition-failover",
        "metrics": metrics_hash,
        "ledger": ledger_hash,
        "results": results_hash,
        "combined": _sha256(_canonical_json(
            [metrics_hash, ledger_hash, results_hash]
        )),
    }


def partition_digest_all(seeds=PARTITION_SEEDS) -> Dict[str, Dict[str, str]]:
    """``{str(seed): digest}`` for every partition-chaos seed."""
    return {str(seed): partition_digest(seed) for seed in seeds}


#: Seeds for the policy-flip/failover chaos digest family.  Two,
#: matching the partition family it rides on: each run covers the
#: mid-failover hot-swap, the three-way policy fencing, and the
#: ledger's policy_apply audit.
POLICY_SEEDS = (11, 23)


def policy_digest(seed: int,
                  scale: Optional[SimScale] = None) -> Dict[str, str]:
    """Digest the policy-flip chaos family for ``seed``.

    One :func:`~repro.policy.chaos.run_policy_chaos` run, hashed the
    same way as the partition family: the HA cluster's metrics stream
    (policy counters included), its ledger stream (``policy_apply``
    events included), and the chaos report payload.
    """
    import dataclasses

    from repro.policy.chaos import _run_policy_chaos

    report, cluster = _run_policy_chaos(
        seed, periods=36, rebalance_periods=2, fallback_after=2,
        takeover_after=2, puts_per_period=6, scale=scale,
    )
    hub = cluster.sim.telemetry

    metrics_text = metrics_jsonl(hub.period_rows)
    ledger_text = ledger_jsonl(hub.ledger)
    results_text = _canonical_json({
        "chaos": dataclasses.asdict(report),
    })
    metrics_hash = _sha256(metrics_text)
    ledger_hash = _sha256(ledger_text)
    results_hash = _sha256(results_text)
    return {
        "kind": "policy-flip",
        "metrics": metrics_hash,
        "ledger": ledger_hash,
        "results": results_hash,
        "combined": _sha256(_canonical_json(
            [metrics_hash, ledger_hash, results_hash]
        )),
    }


def policy_digest_all(seeds=POLICY_SEEDS) -> Dict[str, Dict[str, str]]:
    """``{str(seed): digest}`` for every policy-chaos seed."""
    return {str(seed): policy_digest(seed) for seed in seeds}


#: Seeds for the hierarchical-tenancy / fluid-scale digest family.
SCALE_SEEDS = (11, 23)


def scale_digest(seed: int) -> Dict[str, object]:
    """Digest the fluid-scale family for ``seed``.

    Two parts: a 10^4-client fluid run (the ``fluid-scale`` cell's full
    report — completions, rollups, resize ops, ledger verdicts) and the
    fluid-vs-exact-DES equivalence report on the down-scaled config
    (:func:`~repro.fluid.validate.run_equivalence`).  Alongside the
    digests the entry records the documented attainment tolerance tier
    and the equivalence verdict, so the pinned reference file carries
    the validation contract, not just opaque hashes.
    """
    from repro.fluid.scenario import run_fluid_scale
    from repro.fluid.validate import TOLERANCE_TIER, run_equivalence

    scale_report = run_fluid_scale(num_clients=10_000, seed=seed)
    equivalence = run_equivalence(seed)

    scale_hash = _sha256(_canonical_json(scale_report))
    equivalence_hash = _sha256(_canonical_json(equivalence))
    return {
        "kind": "fluid-scale",
        "fluid": scale_hash,
        "equivalence": equivalence_hash,
        "tolerance_tier": TOLERANCE_TIER,
        "max_error": round(equivalence["max_error"], 6),
        "equivalence_ok": equivalence["ok"],
        "combined": _sha256(_canonical_json(
            [scale_hash, equivalence_hash]
        )),
    }


def scale_digest_all(seeds=SCALE_SEEDS) -> Dict[str, Dict[str, object]]:
    """``{str(seed): digest}`` for every fluid-scale seed."""
    return {str(seed): scale_digest(seed) for seed in seeds}


#: Seeds for the congestion-controlled-fabric digest family.
FABRIC_SEEDS = (11, 23)


def fabric_digest(seed: int) -> Dict[str, str]:
    """Digest the fabric scenario family for ``seed``.

    One :func:`~repro.cluster.fabric_scenarios.run_fabric_family` run:
    incast with CC on and off, the WRITE-heavy / CAS-heavy / mixed-size
    verb mixes, and the token-vs-congestion throttling pair.  The
    payload folds in every congestion counter (ECN marks, CNPs, PFC
    pauses, DCQCN rates, SQ stalls, chain statistics), so a single
    reordered event or perturbed float anywhere in the modeled datapath
    moves the hash.
    """
    from repro.cluster.fabric_scenarios import run_fabric_family

    family = run_fabric_family(seed)
    results_hash = _sha256(_canonical_json(family))
    return {
        "kind": "fabric-cc",
        "results": results_hash,
        "combined": _sha256(_canonical_json([results_hash])),
    }


def fabric_digest_all(seeds=FABRIC_SEEDS) -> Dict[str, Dict[str, str]]:
    """``{str(seed): digest}`` for every fabric seed."""
    return {str(seed): fabric_digest(seed) for seed in seeds}


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Recompute the determinism digests and optionally "
        "rewrite the committed reference file."
    )
    parser.add_argument(
        "--write", metavar="PATH", default=None,
        help="write the digests to PATH (the committed reference is "
        "benchmarks/results/determinism_hashes.json)",
    )
    args = parser.parse_args(argv)
    digests = digest_all()
    globalqos = globalqos_digest_all()
    partition = partition_digest_all()
    policy = policy_digest_all()
    scale = scale_digest_all()
    fabric = fabric_digest_all()
    text = json.dumps(
        {"seeds": digests, "globalqos": globalqos,
         "partition": partition, "policy": policy, "scale": scale,
         "fabric": fabric},
        indent=2, sort_keys=True,
    ) + "\n"
    if args.write:
        with open(args.write, "w") as fh:
            fh.write(text)
        print(f"wrote {args.write}")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
