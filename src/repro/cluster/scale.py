"""Time dilation for tractable runs.

A :class:`SimScale` with factor K shrinks the QoS period (and every
protocol interval, batch size and per-period token count) by K while
leaving op costs and rates physical.  Because Haechi's dynamics are
functions of *rates* and of ratios like control-ops-per-period and
batch-to-pool size, a dilated run is shape-faithful; throughputs in
KIOPS are directly comparable to the paper's, and per-period counts
correspond to ``paper_count / K``.

``K = 1`` reproduces the paper's literal 1 s periods (expensive in host
CPU); benches default to K = 100 (10 ms periods).
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import ConfigError
from repro.core.config import HaechiConfig


@dataclasses.dataclass(frozen=True)
class SimScale:
    """Pure time dilation by ``factor`` (K)."""

    factor: float = 100.0
    interval_divisor: int = 1000  # protocol ticks per period (paper: 1000)

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ConfigError(f"scale factor must be positive, got {self.factor}")

    @property
    def period(self) -> float:
        """The dilated QoS period T in seconds."""
        return 1.0 / self.factor

    def config(self, **overrides) -> HaechiConfig:
        """A :class:`HaechiConfig` dilated by this scale."""
        return HaechiConfig.paper(
            time_scale=self.factor,
            interval_divisor=self.interval_divisor,
            **overrides,
        )

    def tokens(self, rate_ops_per_second: float) -> int:
        """Ops/s -> tokens (ops) per dilated period."""
        return int(round(rate_ops_per_second * self.period))

    def kiops(self, count_per_period: float) -> float:
        """Per-period count -> KIOPS (unscaled, paper-comparable)."""
        return count_per_period / self.period / 1000.0

    def paper_count(self, count_per_period: float) -> float:
        """Per-period count -> the equivalent paper-scale (1 s) count."""
        return count_per_period * self.factor
