"""Canned experiment scenarios for the paper's evaluation.

Each helper builds a fully wired cluster for one family of experiments;
the bench files under ``benchmarks/`` call these with per-figure
parameters so the configuration logic is shared with the examples and
the integration tests.

Conventions follow Sec. III: 10 clients, demand equal to reservation
plus the initial global pool (Experiment 2A), burst clients in QoS mode
run token-paced (``window=None``) and bare clients run with the 64-deep
completion-gated window of Experiment 1A — see EXPERIMENTS.md for the
discussion of this distinction.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.types import AccessMode, QoSMode
from repro.cluster.builder import Cluster, build_cluster
from repro.cluster.experiment import attach_app
from repro.cluster.scale import SimScale
from repro.core.config import HaechiConfig
from repro.faults import (
    Brownout,
    CrashWindow,
    DelayRule,
    DropRule,
    FaultPlan,
    OpFilter,
    QPCloseFault,
)
from repro.workloads.patterns import BURST_WINDOW, RequestPattern
from repro.workloads.reservations import (
    spike_distribution,
    uniform_distribution,
    zipf_group_distribution,
)

NUM_CLIENTS = 10  # the paper's testbed: 1 data node + 10 client nodes


def reservation_set(
    name: str,
    total_ops: float,
    num_clients: int = NUM_CLIENTS,
) -> List[int]:
    """The paper's named reservation distributions.

    ``uniform`` and ``zipf`` split ``total_ops``; ``spike`` uses the
    Set-3 shape (3 clients at 285 K, 7 at 80 K) scaled so its sum is
    ``total_ops``.
    """
    if name == "uniform":
        return uniform_distribution(total_ops, num_clients)
    if name == "zipf":
        return zipf_group_distribution(total_ops, num_clients)
    if name == "spike":
        base = spike_distribution(num_clients, 285_000, 80_000)
        factor = total_ops / sum(base)
        return [int(round(r * factor)) for r in base]
    raise ConfigError(f"unknown reservation distribution {name!r}")


def paper_demands(
    reservations: Sequence[int],
    pool_ops: float,
) -> List[float]:
    """Experiment 2A's demand rule: reservation + initial global pool."""
    return [r + pool_ops for r in reservations]


def qos_cluster(
    reservations: Sequence[int],
    demands: Sequence[float],
    qos_mode: QoSMode = QoSMode.HAECHI,
    pattern: RequestPattern = RequestPattern.BURST,
    scale: Optional[SimScale] = None,
    window: Optional[int] = None,
    demand_fns: Optional[Sequence] = None,
    **build_kwargs,
) -> Cluster:
    """A QoS-managed cluster with one app per client.

    ``window=None`` (default) makes burst apps token-paced; pass an
    integer for completion-gated behaviour.  ``demand_fns`` overrides
    ``demands`` with per-period demand functions (already in tokens).
    """
    cluster = build_cluster(
        num_clients=len(reservations),
        qos_mode=qos_mode,
        reservations_ops=list(reservations),
        scale=scale,
        **build_kwargs,
    )
    for i, client in enumerate(cluster.clients):
        kwargs = {}
        if demand_fns is not None:
            kwargs["demand_fn"] = demand_fns[i]
        else:
            kwargs["demand_ops"] = demands[i]
        if pattern is RequestPattern.BURST:
            kwargs["window"] = window
        attach_app(cluster, client, pattern, **kwargs)
    return cluster


def bare_cluster(
    demands: Sequence[float],
    pattern: RequestPattern = RequestPattern.BURST,
    scale: Optional[SimScale] = None,
    window: Optional[int] = BURST_WINDOW,
    access: AccessMode = AccessMode.ONE_SIDED,
    **build_kwargs,
) -> Cluster:
    """A bare (no-QoS) cluster with one app per client."""
    cluster = build_cluster(
        num_clients=len(demands),
        qos_mode=QoSMode.BARE,
        scale=scale,
        access=access,
        **build_kwargs,
    )
    for i, client in enumerate(cluster.clients):
        kwargs = dict(demand_ops=demands[i], access=access)
        if pattern is RequestPattern.BURST:
            kwargs["window"] = window
        attach_app(cluster, client, pattern, **kwargs)
    return cluster


def congestion_schedule(
    onset: bool,
    switch_period: int,
    total_periods: int,
    period: float,
) -> List[Tuple[float, float]]:
    """Set-4 schedules: congestion starting or stopping mid-run."""
    if not 0 < switch_period < total_periods:
        raise ConfigError(
            f"switch_period {switch_period} outside (0, {total_periods})"
        )
    if onset:
        return [(switch_period * period, (total_periods + 2) * period)]
    return [(0.0, switch_period * period)]


# ----------------------------------------------------------------------
# Fault scenarios (robustness evaluation; see docs/FAULTS.md)
# ----------------------------------------------------------------------
FAULT_KINDS = (
    "control-loss", "delay-spike", "brownout", "client-crash", "qp-close",
)


def fault_plan(
    kind: str,
    config: HaechiConfig,
    rate: float = 0.05,
    client: int = 0,
    start_period: int = 2,
    end_period: Optional[int] = None,
    factor: float = 0.5,
) -> FaultPlan:
    """A canned fault plan, parameterised in *periods* of ``config``.

    - ``control-loss``: every control op (atomics, report WRITEs, QoS
      SENDs) on every link is dropped with probability ``rate``.
    - ``delay-spike``: control ops suffer a multi-tick delay spike with
      probability ``rate``.
    - ``brownout``: the data node's NIC runs at ``factor`` of nominal
      capacity during [start_period, end_period).
    - ``client-crash``: client ``client`` goes dark at ``start_period``
      (restarting at ``end_period`` if given, else never).
    - ``qp-close``: client ``client``'s connection to the server is
      abruptly closed at ``start_period``.

    ``drop_fail_after`` is one check interval so transport retry expiry
    is visible well within a period and the engine's backoff dominates
    recovery timing.
    """
    T = config.period
    start = start_period * T
    fail_after = config.check_interval
    if kind == "control-loss":
        return FaultPlan(
            drops=(DropRule(rate, OpFilter(control_only=True),
                            label="control-loss"),),
            drop_fail_after=fail_after,
        )
    if kind == "delay-spike":
        return FaultPlan(
            delays=(DelayRule(rate, delay=2 * config.check_interval,
                              jitter=config.check_interval,
                              where=OpFilter(control_only=True),
                              label="delay-spike"),),
            drop_fail_after=fail_after,
        )
    if kind == "brownout":
        end = (end_period if end_period is not None else start_period + 2) * T
        return FaultPlan(
            brownouts=(Brownout("server", start, end, factor),),
            drop_fail_after=fail_after,
        )
    if kind == "client-crash":
        end = end_period * T if end_period is not None else math.inf
        return FaultPlan(
            crashes=(CrashWindow(f"C{client + 1}", start, end),),
            drop_fail_after=fail_after,
        )
    if kind == "qp-close":
        return FaultPlan(
            qp_closes=(QPCloseFault(f"C{client + 1}", "server", start),),
            drop_fail_after=fail_after,
        )
    raise ConfigError(f"unknown fault kind {kind!r} (know {FAULT_KINDS})")


def faulty_qos_cluster(
    reservations: Sequence[int],
    demands: Sequence[float],
    plan: Optional[FaultPlan] = None,
    kind: str = "control-loss",
    fault_seed: int = 0,
    fault_kwargs: Optional[dict] = None,
    **qos_kwargs,
) -> Cluster:
    """:func:`qos_cluster` plus an installed fault plan.

    Pass an explicit ``plan`` or let ``kind``/``fault_kwargs`` build one
    from :func:`fault_plan` against the cluster's own config.
    """
    cluster = qos_cluster(reservations, demands, **qos_kwargs)
    if plan is None:
        plan = fault_plan(kind, cluster.config, **(fault_kwargs or {}))
    cluster.inject_faults(plan, seed=fault_seed)
    return cluster


# Saturating demand for profiling/characterization runs: far above C_L.
SATURATING_OPS = 2_000_000

# Default bench scale: 10 ms periods, 200 protocol ticks per period.
BENCH_SCALE = SimScale(factor=200, interval_divisor=200)

# Faster scale for unit/integration tests.
TEST_SCALE = SimScale(factor=1000, interval_divisor=50)
