"""Experiment runner: warm-up, measurement, result collection.

Mirrors the paper's methodology: every run has a warm-up window whose
samples are discarded, then a measurement window whose per-period,
per-client completions and latencies are reported (paper: 30 s warm-up,
figures show 30 one-second periods).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigError
from repro.common.types import AccessMode
from repro.cluster.builder import Cluster, ClientContext
from repro.workloads.app import BurstApp, ConstantRateApp, PoissonApp, constant_demand
from repro.workloads.patterns import BURST_WINDOW, RequestPattern


@dataclasses.dataclass
class ExperimentResult:
    """Everything the benches need, in paper-comparable units."""

    period: float
    scale_factor: float
    warmup_periods: int
    measure_periods: int
    client_period_counts: Dict[str, List[int]]
    client_latency: Dict[str, dict]
    period_totals: List[int]
    monitor_records: List[dict]
    estimator_history: List[float]

    # ------------------------------------------------------------------
    def client_kiops(self, name: str) -> float:
        """A client's mean throughput over the window, in KIOPS."""
        counts = self.client_period_counts[name]
        if not counts:
            return 0.0
        return sum(counts) / len(counts) / self.period / 1000.0

    def total_kiops(self) -> float:
        """System throughput over the window, in KIOPS."""
        if not self.period_totals:
            return 0.0
        return (
            sum(self.period_totals) / len(self.period_totals) / self.period / 1000.0
        )

    def total_kiops_series(self) -> List[float]:
        """Per-period system throughput timeline, in KIOPS."""
        return [count / self.period / 1000.0 for count in self.period_totals]

    def client_kiops_series(self, name: str) -> List[float]:
        """Per-period throughput timeline of one client, in KIOPS."""
        return [
            count / self.period / 1000.0
            for count in self.client_period_counts[name]
        ]

    def client_paper_count(self, name: str) -> float:
        """Mean completions per period, rescaled to the paper's 1 s
        periods (so 157 K reads per paper period reports as 157000)."""
        counts = self.client_period_counts[name]
        if not counts:
            return 0.0
        return sum(counts) / len(counts) * self.scale_factor


def attach_app(
    cluster: Cluster,
    client: ClientContext,
    pattern: RequestPattern,
    demand_ops: Optional[float] = None,
    demand_fn: Optional[Callable[[int], int]] = None,
    key_fn: Optional[Callable[[], int]] = None,
    window: Optional[int] = BURST_WINDOW,
    access: AccessMode = AccessMode.ONE_SIDED,
    start_time: float = 0.0,
):
    """Attach a workload app to one client.

    ``demand_ops`` is in unscaled ops/second (converted to per-period
    demand); alternatively pass a ``demand_fn`` over period indices
    (already in per-period tokens).  Keys default to a round-robin
    sweep of the store.
    """
    if (demand_ops is None) == (demand_fn is None):
        raise ConfigError("pass exactly one of demand_ops / demand_fn")
    if demand_fn is None:
        demand_fn = constant_demand(cluster.config.tokens_per_period(demand_ops))
    if key_fn is None:
        num_slots = cluster.data_node.store.layout.num_slots
        state = {"next": client.index % num_slots}

        def key_fn() -> int:
            key = state["next"]
            state["next"] = (key + 1) % num_slots
            return key

    submit = client.submitter(access=access, touch_memory=cluster.touch_memory)
    hook = cluster.metrics.hook(client.name)
    if pattern is RequestPattern.BURST:
        app_cls = BurstApp
    elif pattern is RequestPattern.CONSTANT_RATE:
        app_cls = ConstantRateApp
    else:
        app_cls = PoissonApp
    kwargs = dict(
        sim=cluster.sim,
        name=client.name,
        submit=submit,
        key_fn=key_fn,
        demand_fn=demand_fn,
        period=cluster.config.period,
        start_time=start_time,
        on_complete=hook,
    )
    if app_cls is BurstApp:
        kwargs["window"] = window
        if client.engine is not None and access is AccessMode.ONE_SIDED:
            kwargs["submit_burst"] = client.engine.submit_burst
    elif app_cls is PoissonApp:
        kwargs["seed"] = client.index  # deterministic per-client stream
    client.app = app_cls(**kwargs)
    return client.app


def run_experiment(
    cluster: Cluster,
    warmup_periods: int = 3,
    measure_periods: int = 30,
) -> ExperimentResult:
    """Run the cluster through warm-up + measurement and collect results."""
    if warmup_periods < 0 or measure_periods < 1:
        raise ConfigError(
            f"bad windows: warmup={warmup_periods}, measure={measure_periods}"
        )
    if not cluster._started:
        cluster.start()
    period = cluster.config.period
    sim = cluster.sim
    # The epsilon guarantees boundary events that land *exactly* on the
    # window edge execute despite float accumulation in period timers.
    epsilon = period * 1e-6
    sim.run(until=sim.now + warmup_periods * period + epsilon)
    cluster.metrics.reset_window()
    sim.run(until=sim.now + measure_periods * period + epsilon)

    monitor_records: List[dict] = []
    estimator_history: List[float] = []
    if cluster.monitor is not None:
        monitor_records = [
            rec
            for rec in cluster.monitor.period_records
            if rec["period"] > warmup_periods
        ]
        estimator_history = list(cluster.monitor.estimator.history)

    return ExperimentResult(
        period=period,
        scale_factor=cluster.scale.factor,
        warmup_periods=warmup_periods,
        measure_periods=measure_periods,
        client_period_counts={
            name: list(m.period_counts) for name, m in cluster.metrics.clients.items()
        },
        client_latency={
            name: m.latency.summary() for name, m in cluster.metrics.clients.items()
        },
        period_totals=list(cluster.metrics.period_totals),
        monitor_records=monitor_records,
        estimator_history=estimator_history,
    )
