"""Fabric-model scenario family: incast, verb mixes, CC-vs-tokens.

The scenarios Haechi never tested, opened by the congestion-controlled
fabric (:mod:`repro.rdma.cc`, docs/FABRIC.md):

- **incast** — N clients hammering one data node's ingress port with
  4 KB READs; with DCQCN enabled the per-QP rates converge to the
  port's fair share (ECN marks -> CNPs -> multiplicative decrease),
  with it disabled PFC pause is the only thing keeping the port queue
  bounded.
- **verb mixes** — WRITE-heavy, CAS-heavy, and mixed-op-size READ
  workloads exercising the per-verb posting buckets (READ/WRITE/ATOMIC
  draw from different per-QP token buckets).
- **congestion vs. token throttling** — the same incast under Haechi
  QoS at two reservation levels: low reservations are token-bound
  (tokens run out long before the port queues; no CNPs), high
  reservations are fabric-bound (entitlement exceeds the port, DCQCN
  becomes the operative limiter under the token envelope).

Every scenario is deterministic for a given seed: drivers draw
verbs/sizes from private ``make_rng`` streams, ECN marks come from the
fabric's own per-port streams, and the ``fabric`` digest family
(:mod:`repro.cluster.determinism`) pins the full result payloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import make_rng
from repro.common.types import OpType, QoSMode
from repro.cluster.builder import Cluster, build_cluster
from repro.cluster.experiment import run_experiment
from repro.cluster.scale import SimScale
from repro.cluster.scenarios import TEST_SCALE, qos_cluster
from repro.policy import load_policy
from repro.rdma.cc import FabricModel
from repro.rdma.verbs import WorkRequest

#: Fan-in of the canonical incast: enough senders that aggregate issue
#: capacity (8 x 400 KIOPS) comfortably exceeds the 50 Gb/s port
#: (~1.5 M 4 KB ops/s), so the port — not the NICs — is the bottleneck.
INCAST_CLIENTS = 8

#: Canonical verb mixes, (weight, opcode) rows per kind.
VERB_MIXES: Dict[str, Tuple[Tuple[float, OpType], ...]] = {
    "read-only": ((1.0, OpType.READ),),
    "write-heavy": ((0.2, OpType.READ), (0.7, OpType.WRITE),
                    (0.1, OpType.FETCH_ADD)),
    "cas-heavy": ((0.3, OpType.READ), (0.2, OpType.WRITE),
                  (0.5, OpType.COMPARE_SWAP)),
}

#: Mixed-op-size distribution for the size-diversity scenario
#: ((weight, bytes) rows; weights sum to 1).
MIXED_SIZES: Tuple[Tuple[float, int], ...] = (
    (0.5, 512), (0.3, 4096), (0.2, 16384),
)


class MixedVerbDriver:
    """A window-gated driver posting a verb/size mix straight on a QP.

    Bypasses the KV/QoS layers on purpose: these scenarios characterize
    the *fabric*, so the driver speaks raw work requests (READ/WRITE
    timing-only, atomics against slot words) with a completion-gated
    window — the classic incast sender.  Verbs and sizes are drawn from
    a private seeded stream, so runs are bit-deterministic.
    """

    def __init__(self, sim, kv, name: str, total_ops: int, window: int,
                 mix=VERB_MIXES["read-only"], sizes=((1.0, 4096),),
                 seed: int = 0):
        if total_ops < 1 or window < 1:
            raise ConfigError("total_ops and window must be >= 1")
        self.sim = sim
        self.kv = kv
        self.name = name
        self.total = total_ops
        self.window = window
        self.mix = tuple(mix)
        self.sizes = tuple(sizes)
        self._rng = make_rng(seed, "fabric-driver", name)
        layout = kv.layout
        max_size = max(size for _, size in self.sizes)
        # Keys cycle over a range whose largest access stays in-region.
        span_slots = -(-max_size // layout.slot_size)
        self._key_limit = max(1, layout.num_slots - span_slots)
        self.posted = 0
        self.completed = 0
        self.failed = 0
        self.finished_at: Optional[float] = None
        self.ops_by_verb = {"read": 0, "write": 0, "atomic": 0}

    def start(self) -> None:
        """Prime the window; the completion loop keeps it full."""
        for _ in range(min(self.window, self.total)):
            self._post()

    def _draw(self, table):
        r = self._rng.random()
        acc = 0.0
        for weight, value in table:
            acc += weight
            if r < acc:
                return value
        return table[-1][1]

    def _post(self) -> None:
        op = self._draw(self.mix)
        key = self.posted % self._key_limit
        self.posted += 1
        layout = self.kv.layout
        if op is OpType.READ:
            self.ops_by_verb["read"] += 1
            wr = WorkRequest(
                opcode=op, size=self._draw(self.sizes),
                remote_addr=layout.slot_addr(key), rkey=self.kv.data_rkey,
                touch_memory=False, on_completion=self._on_wc,
            )
        elif op is OpType.WRITE:
            self.ops_by_verb["write"] += 1
            wr = WorkRequest(
                opcode=op, size=self._draw(self.sizes),
                remote_addr=layout.slot_addr(key), rkey=self.kv.data_rkey,
                touch_memory=False, on_completion=self._on_wc,
            )
        else:  # FETCH_ADD / COMPARE_SWAP on the slot's first word
            self.ops_by_verb["atomic"] += 1
            wr = WorkRequest(
                opcode=op, size=8,
                remote_addr=layout.slot_addr(key), rkey=self.kv.data_rkey,
                add_value=1, compare=0, swap=1,
                on_completion=self._on_wc,
            )
        self.kv.qp.post_send(wr)

    def _on_wc(self, wc) -> None:
        if wc.ok:
            self.completed += 1
        else:
            self.failed += 1
        if self.posted < self.total:
            self._post()
        elif self.completed + self.failed == self.total:
            self.finished_at = self.sim.now

    def summary(self) -> dict:
        """Deterministic per-driver result payload."""
        return {
            "posted": self.posted,
            "completed": self.completed,
            "failed": self.failed,
            "finished_at": self.finished_at,
            "ops_by_verb": dict(self.ops_by_verb),
        }


def _bare_fabric_cluster(num_clients: int, model: FabricModel,
                         seed: int, scale: Optional[SimScale] = None,
                         num_slots: int = 4096) -> Cluster:
    """A QoS-less cluster with the fabric model attached."""
    return build_cluster(
        num_clients=num_clients,
        qos_mode=QoSMode.BARE,
        scale=scale or TEST_SCALE,
        num_slots=num_slots,
        master_seed=seed,
        fabric_model=model,
    )


def _qp_rates(cluster: Cluster) -> List[dict]:
    """Final per-client DCQCN state, sorted by client name."""
    rows = []
    for ctx in cluster.clients:
        fab = ctx.kv.qp.fab
        if fab is None:
            continue
        row = {"client": ctx.name, "cnps_sent": fab.cnps_sent,
               "sq_stalls": fab.sq_stall_events,
               "single_posts": fab.single_posts,
               "chain_posts": fab.chain_posts,
               "chain_wrs": fab.chain_wrs}
        if fab.cc is not None:
            row["rate_bps"] = fab.cc.rate
            row["cnps_received"] = fab.cc.cnps_received
            row["rate_decreases"] = fab.cc.rate_decreases
        rows.append(row)
    return sorted(rows, key=lambda r: r["client"])


def run_mixed_verb(seed: int, kind: str = "read-only",
                   cc_enabled: bool = True,
                   num_clients: int = INCAST_CLIENTS,
                   ops_per_client: int = 1200,
                   window: int = 32,
                   sizes=((1.0, 4096),),
                   horizon: float = 0.25) -> dict:
    """Run one bare fan-in scenario and return its result payload.

    ``kind`` picks a row of :data:`VERB_MIXES`; ``sizes`` the op-size
    distribution.  All clients target the single data node, so the
    destination port congests exactly like a switch incast hotspot.
    """
    mix = VERB_MIXES[kind]
    model = FabricModel.chameleon(cc_enabled=cc_enabled)
    cluster = _bare_fabric_cluster(num_clients, model, seed)
    drivers = []
    for ctx in cluster.clients:
        driver = MixedVerbDriver(
            cluster.sim, ctx.kv, ctx.name, ops_per_client, window,
            mix=mix, sizes=sizes, seed=seed,
        )
        drivers.append(driver)
        driver.start()
    cluster.sim.run(until=horizon)
    makespans = [d.finished_at for d in drivers]
    return {
        "kind": kind,
        "cc_enabled": cc_enabled,
        "num_clients": num_clients,
        "ops_per_client": ops_per_client,
        "drivers": {d.name: d.summary() for d in drivers},
        "all_finished": all(m is not None for m in makespans),
        "makespan": max((m for m in makespans if m is not None),
                        default=None),
        "qps": _qp_rates(cluster),
        "cc": cluster.fabric.cc_summary(),
    }


def run_incast(seed: int, cc_enabled: bool = True,
               num_clients: int = INCAST_CLIENTS,
               ops_per_client: int = 1200, window: int = 32) -> dict:
    """The canonical 4 KB READ incast (see module docstring)."""
    result = run_mixed_verb(
        seed, "read-only", cc_enabled=cc_enabled, num_clients=num_clients,
        ops_per_client=ops_per_client, window=window,
    )
    result["kind"] = "incast"
    return result


#: Reservation levels for the CC-vs-token-throttling comparison, in
#: unscaled ops/s per client, loaded from the committed
#: ``fabric-throttle`` policy document (pinned against drift by
#: tests/policy/test_builtin.py).  ``low`` x 8 = 480 K ops/s — far
#: under the ~1.5 M ops/s port, so tokens bind.  ``high`` x 8 =
#: 1.52 M ops/s — right at the port knee, so the fabric binds under
#: the token envelope.
THROTTLE_POLICY = load_policy("fabric-throttle")
THROTTLE_LOW_OPS = THROTTLE_POLICY.class_named("token-bound").reservation_ops
THROTTLE_HIGH_OPS = THROTTLE_POLICY.class_named(
    "fabric-bound").reservation_ops


def run_throttle_vs_cc(seed: int, reservation_ops: int,
                       cc_enabled: bool = True,
                       num_clients: int = INCAST_CLIENTS,
                       warmup: int = 1, measure: int = 4) -> dict:
    """Haechi QoS + fabric model: who limits, tokens or the fabric?

    Returns per-client attainment (completions / reservation) plus the
    fabric's congestion counters; the ``fabric`` digest family pins one
    low- and one high-reservation run per seed.
    """
    model = FabricModel.chameleon(cc_enabled=cc_enabled)
    reservations = [reservation_ops] * num_clients
    demands = [reservation_ops * 2.0] * num_clients
    cluster = qos_cluster(
        reservations, demands, scale=TEST_SCALE, master_seed=seed,
        fabric_model=model,
    )
    result = run_experiment(
        cluster, warmup_periods=warmup, measure_periods=measure
    )
    config = cluster.config
    expected = config.tokens_per_period(reservation_ops)
    attainment = {
        name: round(
            (sum(counts) / len(counts) / expected) if counts else 0.0, 6
        )
        for name, counts in sorted(result.client_period_counts.items())
    }
    return {
        "kind": "throttle-vs-cc",
        "cc_enabled": cc_enabled,
        "reservation_ops": reservation_ops,
        "tokens_per_period": expected,
        "attainment": attainment,
        "total_kiops": round(result.total_kiops(), 3),
        "qps": _qp_rates(cluster),
        "cc": cluster.fabric.cc_summary(),
    }


def run_fabric_family(seed: int) -> dict:
    """Every fabric scenario for one seed (the digest payload)."""
    return {
        "incast_cc_on": run_incast(seed, cc_enabled=True),
        "incast_cc_off": run_incast(seed, cc_enabled=False),
        "write_heavy": run_mixed_verb(seed, "write-heavy"),
        "cas_heavy": run_mixed_verb(seed, "cas-heavy"),
        "mixed_size": run_mixed_verb(seed, "read-only", sizes=MIXED_SIZES),
        "throttle_low": run_throttle_vs_cc(seed, THROTTLE_LOW_OPS),
        "throttle_high": run_throttle_vs_cc(seed, THROTTLE_HIGH_OPS),
    }
