"""Cluster assembly and experiment harness.

Builds the paper's testbed shape — one data node, N client nodes, an
optional Haechi monitor/engine deployment — on the simulated RDMA
fabric, runs warm-up + measurement windows, and collects per-period,
per-client completions plus latency distributions.
"""

from repro.cluster.builder import Cluster, ClientContext, build_cluster
from repro.cluster.calibration import CHAMELEON
from repro.cluster.experiment import ExperimentResult, run_experiment
from repro.cluster.metrics import MetricsCollector
from repro.cluster.profiling import run_profiling
from repro.cluster.scale import SimScale

__all__ = [
    "CHAMELEON",
    "ClientContext",
    "Cluster",
    "ExperimentResult",
    "MetricsCollector",
    "SimScale",
    "build_cluster",
    "run_experiment",
    "run_profiling",
]
