"""Per-client measurement: period-aligned completions and latencies."""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigError
from repro.sim.stats import Counter, LatencyReservoir


class ClientMetrics:
    """One client's counters: completions, failures, latency samples."""

    def __init__(self, name: str):
        self.name = name
        self.completed = Counter()
        self.failed = Counter()
        self.latency = LatencyReservoir()
        self.period_counts: List[int] = []
        self._last_total = 0

    def record(self, ok: bool, latency: float) -> None:
        """Record one finished I/O."""
        if ok:
            self.completed.add()
        else:
            self.failed.add()
        self.latency.record(latency)

    def sample_period(self) -> int:
        """Close one period: append and return completions since last."""
        delta = self.completed.total - self._last_total
        self._last_total = self.completed.total
        self.period_counts.append(delta)
        return delta

    def reset_window(self) -> None:
        """Drop warm-up data; subsequent periods count from here."""
        self.period_counts.clear()
        self.latency.reset()
        self._last_total = self.completed.total
        self.completed.mark_window()
        self.failed.mark_window()


class MetricsCollector:
    """Samples every client at QoS-period boundaries.

    Sampling starts at the first boundary after construction and stays
    aligned with the monitor/app period grid (everything starts at time
    zero in the harness).
    """

    def __init__(self, sim, period: float):
        if period <= 0:
            raise ConfigError(f"period must be positive, got {period}")
        self.sim = sim
        self.period = period
        self.clients: Dict[str, ClientMetrics] = {}
        self.period_totals: List[int] = []
        # absolute-time scheduling: repeated `now + period` accumulates
        # float error and can drift a boundary past the experiment's end
        self._origin = sim.now
        self._boundary_index = 0
        sim.schedule_at(self._origin + period, self._boundary)

    def register(self, name: str) -> ClientMetrics:
        """Create (or fetch) the metrics slot for ``name``."""
        if name not in self.clients:
            self.clients[name] = ClientMetrics(name)
        return self.clients[name]

    def hook(self, name: str):
        """A completion hook suitable for the app drivers."""
        metrics = self.register(name)
        return metrics.record

    def _boundary(self) -> None:
        total = 0
        for metrics in self.clients.values():
            total += metrics.sample_period()
        self.period_totals.append(total)
        self._boundary_index += 1
        self.sim.schedule_at(
            self._origin + (self._boundary_index + 1) * self.period,
            self._boundary,
        )

    def reset_window(self) -> None:
        """Discard warm-up samples for every client."""
        for metrics in self.clients.values():
            metrics.reset_window()
        self.period_totals.clear()


def robustness_summary(cluster) -> dict:
    """Fault and recovery counters for a built cluster, in one dict.

    Aggregates the engines' control-plane telemetry (retries, timeouts,
    degraded-mode episodes), the monitor's lease/clamp counters with the
    eviction log, and — when a fault injector is installed — what the
    plan actually inflicted.  Benches, the CLI, and the fault tests all
    report through this single view.
    """
    engines = {}
    failover = {}
    for ctx in cluster.clients:
        engine = ctx.engine
        if engine is None:
            continue
        engines[ctx.name] = {
            "faa_failures": engine.faa_failures,
            "faa_timeouts": engine.faa_timeouts,
            "faa_pool_empty": engine.faa_pool_empty,
            "probes_issued": engine.probes_issued,
            "reports_failed": engine.reports_failed,
            "degraded": engine.degraded,
            "degraded_entries": engine.degraded_entries,
            "degraded_periods": engine.degraded_periods,
            "degraded_recoveries": engine.degraded_recoveries,
            "re_registrations": engine.re_registrations,
            "stale_control_messages": engine.stale_control_messages,
            "generation_resyncs": engine.generation_resyncs,
        }
        manager = getattr(ctx, "failover", None)
        if manager is not None:
            failover[ctx.name] = {
                "state": manager.state.value,
                "suspect_transitions": manager.suspect_transitions,
                "probes_sent": manager.probes_sent,
                "reconnect_attempts": manager.reconnect_attempts,
                "failovers": manager.failovers,
                "rejoins_completed": manager.rejoins_completed,
                "put_retries": manager.put_retries,
                "puts_acked": manager.puts_acked,
                "failover_windows": list(manager.failover_windows),
            }
    summary = {
        "engines": engines,
        "faa_failures_total": sum(e["faa_failures"] for e in engines.values()),
        "faa_timeouts_total": sum(e["faa_timeouts"] for e in engines.values()),
        "degraded_entries_total": sum(
            e["degraded_entries"] for e in engines.values()
        ),
        "re_registrations_total": sum(
            e["re_registrations"] for e in engines.values()
        ),
    }
    if failover:
        summary["failover"] = failover
        summary["failovers_total"] = sum(
            f["failovers"] for f in failover.values()
        )
    if cluster.monitor is not None:
        monitor = cluster.monitor
        summary["monitor"] = {
            "stale_reports": monitor.stale_reports,
            "clamped_reports": monitor.clamped_reports,
            "sends_failed": monitor.sends_failed,
            "evictions": list(monitor.evictions),
            "rejoins": list(monitor.rejoins),
            "reinitializations": monitor.reinitializations,
        }
    replica_monitor = getattr(cluster, "replica_monitor", None)
    if replica_monitor is not None:
        summary["replica_monitor"] = {
            "rejoins": list(replica_monitor.rejoins),
            "rejoin_clamped": replica_monitor.rejoin_clamped,
            "sends_failed": replica_monitor.sends_failed,
        }
        data_node = cluster.data_node
        summary["replication"] = {
            "replicated_puts": data_node.replicated_puts,
            "replication_retries": data_node.replication_retries,
            "degraded_acks": data_node.degraded_acks,
            "replica_applies": cluster.replica_node.replica_applies,
            # replayed PUTs suppressed by version, per store
            "duplicate_suppressed_primary":
                data_node.store.duplicate_suppressed,
            "duplicate_suppressed_replica":
                cluster.replica_node.store.duplicate_suppressed,
        }
    if cluster.fault_injector is not None:
        summary["faults"] = cluster.fault_injector.summary()
    return summary
