"""Per-client measurement: period-aligned completions and latencies."""

from __future__ import annotations

from typing import Dict, List

from repro.common.errors import ConfigError
from repro.sim.stats import Counter, LatencyReservoir


class ClientMetrics:
    """One client's counters: completions, failures, latency samples."""

    def __init__(self, name: str):
        self.name = name
        self.completed = Counter()
        self.failed = Counter()
        self.latency = LatencyReservoir()
        self.period_counts: List[int] = []
        self._last_total = 0

    def record(self, ok: bool, latency: float) -> None:
        """Record one finished I/O."""
        if ok:
            self.completed.add()
        else:
            self.failed.add()
        self.latency.record(latency)

    def sample_period(self) -> int:
        """Close one period: append and return completions since last."""
        delta = self.completed.total - self._last_total
        self._last_total = self.completed.total
        self.period_counts.append(delta)
        return delta

    def reset_window(self) -> None:
        """Drop warm-up data; subsequent periods count from here."""
        self.period_counts.clear()
        self.latency.reset()
        self._last_total = self.completed.total
        self.completed.mark_window()
        self.failed.mark_window()


class MetricsCollector:
    """Samples every client at QoS-period boundaries.

    Sampling starts at the first boundary after construction and stays
    aligned with the monitor/app period grid (everything starts at time
    zero in the harness).
    """

    def __init__(self, sim, period: float):
        if period <= 0:
            raise ConfigError(f"period must be positive, got {period}")
        self.sim = sim
        self.period = period
        self.clients: Dict[str, ClientMetrics] = {}
        self.period_totals: List[int] = []
        # absolute-time scheduling: repeated `now + period` accumulates
        # float error and can drift a boundary past the experiment's end
        self._origin = sim.now
        self._boundary_index = 0
        sim.schedule_at(self._origin + period, self._boundary)

    def register(self, name: str) -> ClientMetrics:
        """Create (or fetch) the metrics slot for ``name``."""
        if name not in self.clients:
            self.clients[name] = ClientMetrics(name)
        return self.clients[name]

    def hook(self, name: str):
        """A completion hook suitable for the app drivers."""
        metrics = self.register(name)
        return metrics.record

    def _boundary(self) -> None:
        total = 0
        for metrics in self.clients.values():
            total += metrics.sample_period()
        self.period_totals.append(total)
        self._boundary_index += 1
        self.sim.schedule_at(
            self._origin + (self._boundary_index + 1) * self.period,
            self._boundary,
        )

    def reset_window(self) -> None:
        """Discard warm-up samples for every client."""
        for metrics in self.clients.values():
            metrics.reset_window()
        self.period_totals.clear()


def register_cluster_metrics(cluster, registry) -> None:
    """Register every component's counters on ``registry``.

    All registrations are *callback gauges* over the components'
    existing plain-attribute counters (see
    :mod:`repro.telemetry.registry`): the hot paths keep their
    ``self.whatever += 1`` and the registry reads them only at snapshot
    time, so this costs the instrumented code nothing per operation.
    Idempotent — re-registering after a topology change (failover
    rebind) rebinds the callbacks.
    """
    if hasattr(cluster, "nodes"):  # MultiNodeCluster
        _register_multinode_metrics(cluster, registry)
        return
    for ctx in cluster.clients:
        if ctx.engine is not None:
            for name, getter in ctx.engine.metrics_items():
                registry.gauge(name, getter, client=ctx.name)
        manager = getattr(ctx, "failover", None)
        if manager is not None:
            for name, getter in manager.metrics_items():
                registry.gauge(name, getter, client=ctx.name)
        for name, getter in ctx.host.nic.metrics_items():
            registry.gauge(name, getter, node=ctx.host.name)
    for name, getter in cluster.server_host.nic.metrics_items():
        registry.gauge(name, getter, node=cluster.server_host.name)
    for name, getter in cluster.data_node.metrics_items():
        registry.gauge(name, getter, node=cluster.server_host.name)
    if cluster.monitor is not None:
        for name, getter in cluster.monitor.metrics_items():
            registry.gauge(name, getter, node=cluster.server_host.name)
    replica_host = getattr(cluster, "replica_host", None)
    if replica_host is not None:
        for name, getter in replica_host.nic.metrics_items():
            registry.gauge(name, getter, node=replica_host.name)
        for name, getter in cluster.replica_node.metrics_items():
            registry.gauge(name, getter, node=replica_host.name)
        if cluster.replica_monitor is not None:
            for name, getter in cluster.replica_monitor.metrics_items():
                registry.gauge(name, getter, node=replica_host.name)
    if cluster.fault_injector is not None:
        for name, getter in cluster.fault_injector.metrics_items():
            registry.gauge(name, getter)
    # Hierarchical tenancy: gauges exist only when a hierarchy is bound
    # (the PR 5 conditional idiom — unbound clusters keep their pinned
    # metric-row digests byte-identical).
    binding = getattr(cluster, "tenancy", None)
    if binding is not None:
        for name, getter in binding.metrics_items():
            registry.gauge(name, getter)
    # Fabric model: port + per-QP congestion gauges exist only when a
    # FabricModel is attached (same conditional idiom), so model-less
    # clusters keep their pinned metric-row digests byte-identical.
    fabric = getattr(cluster, "fabric", None)
    if fabric is not None and getattr(fabric, "model", None) is not None:
        for port_name in sorted(fabric.ports):
            for name, getter in fabric.ports[port_name].metrics_items():
                registry.gauge(name, getter, node=port_name)
        for ctx in cluster.clients:
            fab = ctx.kv.qp.fab
            if fab is not None:
                for name, getter in fab.metrics_items():
                    registry.gauge(name, getter, client=ctx.name)


def _register_multinode_metrics(cluster, registry) -> None:
    """The multi-node topology: per-(client, node) engines, N monitors,
    and — when attached — the global coordinator and its agents."""
    for striped in cluster.clients:
        for node, engine in zip(cluster.nodes, striped.engines):
            for name, getter in engine.metrics_items():
                registry.gauge(name, getter, client=striped.name,
                               node=node.host.name)
        for name, getter in striped.host.nic.metrics_items():
            registry.gauge(name, getter, node=striped.host.name)
    for node in cluster.nodes:
        for name, getter in node.host.nic.metrics_items():
            registry.gauge(name, getter, node=node.host.name)
        for name, getter in node.data_node.metrics_items():
            registry.gauge(name, getter, node=node.host.name)
        if node.monitor is not None:
            for name, getter in node.monitor.metrics_items():
                registry.gauge(name, getter, node=node.host.name)
    if cluster.fault_injector is not None:
        for name, getter in cluster.fault_injector.metrics_items():
            registry.gauge(name, getter)
    coordinator = getattr(cluster, "coordinator", None)
    if coordinator is not None:
        for name, getter in coordinator.metrics_items():
            registry.gauge(name, getter, node=coordinator.host.name)
    standby = getattr(cluster, "standby", None)
    if standby is not None:
        for name, getter in standby.metrics_items():
            registry.gauge(name, getter, node=standby.host.name)
    for agent in getattr(cluster, "client_agents", []):
        for name, getter in agent.metrics_items():
            registry.gauge(name, getter, client=agent.striped.name)
    for agent in getattr(cluster, "node_agents", []):
        for name, getter in agent.metrics_items():
            registry.gauge(name, getter, node=agent.node.host.name)


def robustness_summary(cluster) -> dict:
    """Fault and recovery counters for a built cluster, in one dict.

    Aggregates the engines' control-plane telemetry (retries, timeouts,
    degraded-mode episodes), the monitor's lease/clamp counters with the
    eviction log, and — when a fault injector is installed — what the
    plan actually inflicted.  Benches, the CLI, and the fault tests all
    report through this single view.

    Since the telemetry subsystem landed this is a *façade over the
    metrics registry*: every scalar is read through the same callback
    gauges :func:`register_cluster_metrics` exposes to the exporters,
    so the two views cannot drift.  List- and string-valued entries
    (eviction/rejoin logs, failover state) stay direct reads — they are
    event logs, not metrics.  The output shape is unchanged
    field-for-field from the pre-registry implementation.
    """
    from repro.core.engine import QoSEngine
    from repro.recovery.failover import FailoverManager
    from repro.telemetry.registry import MetricsRegistry

    if hasattr(cluster, "nodes"):  # MultiNodeCluster
        return _multinode_summary(cluster)

    registry = MetricsRegistry()
    register_cluster_metrics(cluster, registry)

    def read(name, **labels):
        return registry.value(name, **labels)

    engines = {}
    failover = {}
    for ctx in cluster.clients:
        if ctx.engine is None:
            continue
        engines[ctx.name] = {
            field: read(f"engine_{field}", client=ctx.name)
            for field in QoSEngine.SUMMARY_FIELDS
        }
        manager = getattr(ctx, "failover", None)
        if manager is not None:
            entry = {"state": manager.state.value}
            entry.update({
                field: read(f"failover_{field}", client=ctx.name)
                for field in FailoverManager.SUMMARY_FIELDS
            })
            entry["failover_windows"] = list(manager.failover_windows)
            failover[ctx.name] = entry
    summary = {
        "engines": engines,
        "faa_failures_total": sum(e["faa_failures"] for e in engines.values()),
        "faa_timeouts_total": sum(e["faa_timeouts"] for e in engines.values()),
        "degraded_entries_total": sum(
            e["degraded_entries"] for e in engines.values()
        ),
        "re_registrations_total": sum(
            e["re_registrations"] for e in engines.values()
        ),
    }
    if failover:
        summary["failover"] = failover
        summary["failovers_total"] = sum(
            f["failovers"] for f in failover.values()
        )
    if cluster.monitor is not None:
        node = cluster.server_host.name
        summary["monitor"] = {
            "stale_reports": read("monitor_stale_reports", node=node),
            "clamped_reports": read("monitor_clamped_reports", node=node),
            "sends_failed": read("monitor_sends_failed", node=node),
            "evictions": list(cluster.monitor.evictions),
            "rejoins": list(cluster.monitor.rejoins),
            "reinitializations": read("monitor_reinitializations", node=node),
        }
    replica_monitor = getattr(cluster, "replica_monitor", None)
    if replica_monitor is not None:
        replica = cluster.replica_host.name
        primary = cluster.server_host.name
        summary["replica_monitor"] = {
            "rejoins": list(replica_monitor.rejoins),
            "rejoin_clamped": read("monitor_rejoin_clamped", node=replica),
            "sends_failed": read("monitor_sends_failed", node=replica),
        }
        summary["replication"] = {
            "replicated_puts": read("server_replicated_puts", node=primary),
            "replication_retries":
                read("server_replication_retries", node=primary),
            "degraded_acks": read("server_degraded_acks", node=primary),
            "replica_applies": read("server_replica_applies", node=replica),
            # replayed PUTs suppressed by version, per store
            "duplicate_suppressed_primary":
                read("server_duplicate_suppressed", node=primary),
            "duplicate_suppressed_replica":
                read("server_duplicate_suppressed", node=replica),
        }
    binding = getattr(cluster, "tenancy", None)
    if binding is not None:
        tenancy = {
            name: read(name) for name, _ in binding.metrics_items()
        }
        tenancy["tenants"] = binding.tenant_rollup()
        tenancy["rollup_conservation"] = binding.rollup_conservation()
        ledger_rollup = binding.ledger_rollup()
        if ledger_rollup:
            tenancy["ledger"] = ledger_rollup
        summary["tenancy"] = tenancy
    if cluster.fault_injector is not None:
        summary["faults"] = cluster.fault_injector.summary()
    return summary


def _multinode_summary(cluster) -> dict:
    """The multi-node façade: per-(client, node) engine counters, one
    monitor block per node, and the global-coordinator telemetry
    (coordinator + client/node agent counters) when one is attached —
    plus a ``standby`` sub-block and failover/quarantine totals when
    the warm standby is armed.

    Reads go through the same registry gauges
    :func:`register_cluster_metrics` exposes to the exporters, so this
    view cannot drift from the metrics stream.
    """
    from repro.core.engine import QoSEngine
    from repro.telemetry.registry import MetricsRegistry

    registry = MetricsRegistry()
    register_cluster_metrics(cluster, registry)

    def read(name, **labels):
        return registry.value(name, **labels)

    engines = {}
    for striped in cluster.clients:
        engines[striped.name] = {
            node.host.name: {
                field: read(f"engine_{field}",
                            client=striped.name, node=node.host.name)
                for field in QoSEngine.SUMMARY_FIELDS
            }
            for node in cluster.nodes[:len(striped.engines)]
        }
    flat = [e for per_node in engines.values() for e in per_node.values()]
    summary = {
        "engines": engines,
        "faa_failures_total": sum(e["faa_failures"] for e in flat),
        "faa_timeouts_total": sum(e["faa_timeouts"] for e in flat),
        "degraded_entries_total": sum(
            e["degraded_entries"] for e in flat
        ),
        "re_registrations_total": sum(
            e["re_registrations"] for e in flat
        ),
        "monitors": {},
    }
    for node in cluster.nodes:
        if node.monitor is None:
            continue
        name = node.host.name
        summary["monitors"][name] = {
            "stale_reports": read("monitor_stale_reports", node=name),
            "clamped_reports": read("monitor_clamped_reports", node=name),
            "sends_failed": read("monitor_sends_failed", node=name),
            "evictions": list(node.monitor.evictions),
            "rejoins": list(node.monitor.rejoins),
            "rebalances": len(node.monitor.rebalances),
            "rebalance_clamped": node.monitor.rebalance_clamped,
        }
    coordinator = getattr(cluster, "coordinator", None)
    if coordinator is not None:
        coord_node = coordinator.host.name
        block = {
            name: read(name, node=coord_node)
            for name, _ in coordinator.metrics_items()
        }
        block["clients"] = {
            agent.striped.name: {
                name: read(name, client=agent.striped.name)
                for name, _ in agent.metrics_items()
            }
            for agent in cluster.client_agents
        }
        block["nodes"] = {
            agent.node.host.name: {
                name: read(name, node=agent.node.host.name)
                for name, _ in agent.metrics_items()
            }
            for agent in cluster.node_agents
        }
        block["fallbacks_total"] = sum(
            agent.fallbacks for agent in cluster.client_agents
        )
        standby = getattr(cluster, "standby", None)
        if standby is not None:
            block["standby"] = {
                name: read(name, node=standby.host.name)
                for name, _ in standby.metrics_items()
            }
            coordinators = (coordinator, standby)
            agents = cluster.client_agents
            block["takeovers_total"] = sum(
                c.takeovers for c in coordinators
            )
            block["fenced_updates_total"] = sum(
                a.updates_fenced for a in agents
            )
            block["stale_updates_rejected_total"] = sum(
                a.updates_rejected_stale for a in agents
            )
            block["quarantines_total"] = sum(
                c.quarantines for c in coordinators
            )
            block["unquarantines_total"] = sum(
                c.unquarantines for c in coordinators
            )
        summary["globalqos"] = block
    if cluster.fault_injector is not None:
        summary["faults"] = cluster.fault_injector.summary()
    return summary
