"""Cluster assembly: the paper's 1-data-node / N-client testbed shape.

``build_cluster`` wires the full simulated deployment: fabric, data
node (KV store + two-sided RPC service), client hosts with KV clients,
and — for the QoS modes — the Haechi monitor with admission control
plus one QoS engine per client.  Apps and background jobs are attached
afterwards by the scenario code.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.common.errors import ConfigError
from repro.common.types import AccessMode, QoSMode
from repro.core.admission import AdmissionController
from repro.core.capacity import AdaptiveCapacityEstimator, ProfiledCapacity
from repro.core.config import HaechiConfig
from repro.core.engine import QoSEngine
from repro.core.monitor import QoSMonitor
from repro.cluster.calibration import CHAMELEON, DEFAULT_PROFILE_RSD, TestbedCalibration
from repro.cluster.metrics import MetricsCollector
from repro.cluster.scale import SimScale
from repro.kvstore.client import KVClient
from repro.kvstore.server import DataNode
from repro.rdma.cpu import CPUProfile
from repro.rdma.dispatch import TypeDispatcher
from repro.rdma.fabric import Fabric
from repro.rdma.nic import NICProfile
from repro.rdma.node import Host
from repro.sim.core import Simulator
from repro.sim.trace import NULL_TRACER
from repro.workloads.background import BackgroundJob


@dataclasses.dataclass
class ClientContext:
    """Everything belonging to one client node."""

    index: int
    name: str
    host: Host
    kv: KVClient
    dispatcher: TypeDispatcher
    engine: Optional[QoSEngine] = None
    app: Optional[object] = None
    # Replicated deployments (repro.recovery): the standby connection
    # and the failover state machine driving it.
    kv_replica: Optional[KVClient] = None
    failover: Optional[object] = None
    # Hierarchical tenancy (repro.tenancy): set when a hierarchy is
    # bound; None for flat deployments.
    tenant: Optional[str] = None
    group: Optional[str] = None

    def submitter(self, access: AccessMode = AccessMode.ONE_SIDED,
                  touch_memory: bool = False):
        """The submit(key, cb) callable apps should drive.

        Routes through the QoS engine when one is deployed, otherwise
        straight to the KV client in the requested access mode.
        """
        if self.engine is not None:
            return self.engine.submit
        if access is AccessMode.ONE_SIDED:
            return lambda key, cb: self.kv.get_onesided(
                key, cb, touch_memory=touch_memory
            )
        return self.kv.get_twosided


class Cluster:
    """A built deployment, ready for apps and :func:`run_experiment`."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        scale: SimScale,
        config: HaechiConfig,
        server_host: Host,
        data_node: DataNode,
        clients: List[ClientContext],
        monitor: Optional[QoSMonitor],
        admission: Optional[AdmissionController],
        touch_memory: bool,
    ):
        self.sim = sim
        self.fabric = fabric
        self.scale = scale
        self.config = config
        self.server_host = server_host
        self.data_node = data_node
        self.clients = clients
        self.monitor = monitor
        self.admission = admission
        self.touch_memory = touch_memory
        self.metrics = MetricsCollector(sim, config.period)
        self.background_jobs: List[BackgroundJob] = []
        self.fault_injector = None
        self._background_count = 0
        self._started = False

    def inject_faults(self, plan, seed: int = 0, tracer=NULL_TRACER):
        """Install a :class:`~repro.faults.plan.FaultPlan` on the fabric.

        Call before :meth:`start`; returns the installed injector (also
        kept as ``self.fault_injector`` for metrics collection).
        """
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(plan, seed=seed, tracer=tracer)
        injector.install(self.fabric)
        self.fault_injector = injector
        return injector

    def start(self) -> None:
        """Begin QoS periods (no-op for bare clusters)."""
        if self._started:
            raise ConfigError("cluster already started")
        self._started = True
        if self.monitor is not None:
            self.monitor.start()

    def add_background_job(
        self, schedule, window: int = 64, rate_ops: float = None
    ) -> BackgroundJob:
        """Attach an unmanaged congestion source (its own host + QP)."""
        self._background_count += 1
        name = f"bg{self._background_count}"
        host = self.fabric.add_host(
            Host(self.sim, name, self.server_host.nic.profile, CPUProfile())
        )
        qp, _ = self.fabric.connect(host, self.server_host)
        dispatcher = TypeDispatcher()
        host.set_rpc_handler(dispatcher)
        kv = KVClient(
            name,
            qp,
            dispatcher,
            layout=self.data_node.store.layout,
            data_rkey=self.data_node.store.region.rkey,
        )
        job = BackgroundJob(
            self.sim, kv, schedule=schedule, window=window, rate_ops=rate_ops
        )
        self.background_jobs.append(job)
        return job


def build_cluster(
    num_clients: int,
    qos_mode: QoSMode = QoSMode.HAECHI,
    reservations_ops: Optional[List[float]] = None,
    limits_ops: Optional[List[float]] = None,
    scale: Optional[SimScale] = None,
    access: AccessMode = AccessMode.ONE_SIDED,
    profiled: Optional[ProfiledCapacity] = None,
    calibration: TestbedCalibration = CHAMELEON,
    num_slots: int = 4096,
    materialize: bool = False,
    touch_memory: bool = False,
    admission_enabled: bool = True,
    config: Optional[HaechiConfig] = None,
    tracer=NULL_TRACER,
    master_seed: int = 0,
    fabric_model=None,
) -> Cluster:
    """Build the testbed.

    ``reservations_ops`` are per-client reservations in *unscaled*
    ops/second (paper units); they are converted to tokens per dilated
    period internally.  ``profiled`` seeds the capacity estimator
    (tokens per dilated period); when omitted it defaults to the
    calibrated system capacity with a small assumed standard deviation.

    ``fabric_model`` (a :class:`repro.rdma.cc.FabricModel`) upgrades
    every connection to the congestion-controlled datapath — PCIe
    posting costs, per-verb buckets, bounded SQ, DCQCN, PFC (see
    docs/FABRIC.md).  ``None`` keeps the historical NIC-only contention
    model, byte-identical to previous builds.
    """
    if num_clients < 1:
        raise ConfigError(f"num_clients must be >= 1, got {num_clients}")
    scale = scale or SimScale()
    config = config or scale.config(
        token_conversion=(qos_mode is not QoSMode.BASIC_HAECHI)
    )
    if qos_mode is QoSMode.BASIC_HAECHI and config.token_conversion:
        raise ConfigError("Basic Haechi requires token_conversion=False")

    qos = qos_mode in (QoSMode.HAECHI, QoSMode.BASIC_HAECHI)
    if qos:
        if access is not AccessMode.ONE_SIDED:
            raise ConfigError("Haechi manages one-sided I/O only")
        if reservations_ops is None or len(reservations_ops) != num_clients:
            raise ConfigError(
                "QoS modes need one reservation per client "
                f"(got {reservations_ops!r} for {num_clients} clients)"
            )
        if limits_ops is not None and len(limits_ops) != num_clients:
            raise ConfigError("limits_ops must match num_clients")

    sim = Simulator()
    fabric = Fabric(sim, model=fabric_model, seed=master_seed)
    nic_profile = NICProfile.chameleon()
    cpu_profile = CPUProfile()
    server_host = fabric.add_host(Host(sim, "server", nic_profile, cpu_profile))
    data_node = DataNode(server_host, num_slots=num_slots, materialize=materialize)

    monitor = None
    admission = None
    if qos:
        one_sided = access is AccessMode.ONE_SIDED
        if profiled is None:
            mean = calibration.system_limit(one_sided) * config.period
            profiled = ProfiledCapacity(
                mean=mean, stddev=mean * DEFAULT_PROFILE_RSD
            )
        estimator = AdaptiveCapacityEstimator(
            profiled=profiled,
            eta=config.eta,
            history_window=config.history_window,
            saturation_tolerance=config.saturation_tolerance,
        )
        if admission_enabled:
            admission = AdmissionController(
                global_tokens_per_period=int(
                    calibration.system_limit(one_sided) * config.period
                ),
                local_tokens_per_period=int(
                    calibration.client_limit(one_sided) * config.period
                ),
            )
        monitor = QoSMonitor(
            server_host, config, estimator, admission=admission,
            max_clients=max(64, num_clients), tracer=tracer,
        )

    clients: List[ClientContext] = []
    for i in range(num_clients):
        name = f"C{i + 1}"  # paper numbering
        host = fabric.add_host(Host(sim, name, nic_profile, cpu_profile))
        qp_cs, qp_sc = fabric.connect(host, server_host)
        dispatcher = TypeDispatcher()
        host.set_rpc_handler(dispatcher)
        kv = KVClient(
            name,
            qp_cs,
            dispatcher,
            layout=data_node.store.layout,
            data_rkey=data_node.store.region.rkey,
            # Two-sided RPCs whose response never arrives fail at this
            # deadline instead of leaking the pending entry (generous:
            # a full period, far above any healthy RTT).
            rpc_deadline=config.period,
        )
        context = ClientContext(
            index=i, name=name, host=host, kv=kv, dispatcher=dispatcher
        )
        if qos:
            tokens = config.tokens_per_period(reservations_ops[i])
            layout = monitor.add_client(i, tokens, qp_sc)
            limit = None
            if limits_ops is not None and limits_ops[i] is not None:
                limit = config.tokens_per_period(limits_ops[i])
            context.engine = QoSEngine(
                client_id=i,
                kv=kv,
                layout=layout,
                config=config,
                reservation=tokens,
                limit=limit,
                dispatcher=dispatcher,
                touch_memory=touch_memory,
                tracer=tracer,
                seed=master_seed,
            )
        clients.append(context)

    return Cluster(
        sim=sim,
        fabric=fabric,
        scale=scale,
        config=config,
        server_host=server_host,
        data_node=data_node,
        clients=clients,
        monitor=monitor,
        admission=admission,
        touch_memory=touch_memory,
    )
