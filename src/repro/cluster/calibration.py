"""Calibration constants measured on the paper's Chameleon testbed.

These are the Section III-B profiling results the admission controller
and capacity estimator are seeded with.  The simulated NIC/CPU profiles
(:meth:`repro.rdma.nic.NICProfile.chameleon`) are calibrated to
reproduce them exactly; ``benchmarks/bench_fig06*`` and ``bench_fig07*``
re-derive them empirically.
"""

from __future__ import annotations

import dataclasses

from repro.common.units import kiops


@dataclasses.dataclass(frozen=True)
class TestbedCalibration:
    """Saturation capacities of one deployment, in ops/second."""

    one_sided_client: float  # C_L, one-sided
    one_sided_system: float  # C_G, one-sided
    two_sided_client: float  # C_L, two-sided
    two_sided_system: float  # C_G, two-sided

    def client_limit(self, one_sided: bool = True) -> float:
        """C_L for the chosen access mode."""
        return self.one_sided_client if one_sided else self.two_sided_client

    def system_limit(self, one_sided: bool = True) -> float:
        """C_G for the chosen access mode."""
        return self.one_sided_system if one_sided else self.two_sided_system


# Paper Sec. III-B: 400 / 1570 KIOPS one-sided, 327 / 427 KIOPS two-sided.
CHAMELEON = TestbedCalibration(
    one_sided_client=kiops(400),
    one_sided_system=kiops(1570),
    two_sided_client=kiops(327),
    two_sided_system=kiops(427),
)

# Default relative std-dev assumed for the profiled capacity when a
# bench seeds the estimator without running its own profiling pass.
# Hardware profiling over 1000 trials shows a few percent of spread;
# 6% puts the Algorithm-1 floor (Omega_prof - 3*sigma) at 82% of the
# profiled capacity, low enough that the Set-4 congestion experiments
# (~13% capacity loss) adapt through the window branch as in the paper.
DEFAULT_PROFILE_RSD = 0.06
