"""Named experiment presets: every paper experiment as a callable.

Each preset builds, runs, and summarizes one of the paper's experiment
configurations with a single call — the programmatic face of what the
``benchmarks/`` files do, reused by the CLI's ``figure`` subcommand.
Presets accept a ``quick`` flag that trades periods/dilation for speed.

The registry maps preset names (``fig9-zipf``, ``fig13`` ...) to
:class:`Preset` objects carrying a description and a runner that
returns a dict of printable series/tables.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List

from repro.common.errors import ConfigError
from repro.common.types import AccessMode, QoSMode
from repro.cluster.experiment import run_experiment
from repro.cluster.scale import SimScale
from repro.cluster.scenarios import (
    SATURATING_OPS,
    bare_cluster,
    congestion_schedule,
    paper_demands,
    qos_cluster,
    reservation_set,
)
from repro.policy import load_policy
from repro.workloads.patterns import BURST_WINDOW, RequestPattern

CAPACITY = 1_570_000

# Reservation shapes load from the committed policy documents — one
# source of truth for the capacity split, shared with the CLI's
# ``policy`` subcommand and pinned by tests/policy/test_builtin.py.
# ``paper-qos`` reserves 90% of capacity (fig9/fig11/fig13);
# ``paper-congestion`` reserves 80% and leaves 20% of pool headroom
# for the background scan (set4 timelines).
PAPER_QOS_POLICY = load_policy("paper-qos")
PAPER_CONGESTION_POLICY = load_policy("paper-congestion")


@dataclasses.dataclass(frozen=True)
class Preset:
    """A named, runnable experiment configuration."""

    name: str
    description: str
    runner: Callable[[bool], dict]

    def run(self, quick: bool = False) -> dict:
        """Execute and return the result summary dict."""
        return self.runner(quick)


def _scales(quick: bool):
    if quick:
        return SimScale(factor=500, interval_divisor=100), 2, 4
    return SimScale(factor=200, interval_divisor=200), 3, 10


def _per_client_rows(result, reservations=None) -> List[list]:
    rows = []
    for i in range(len(result.client_period_counts)):
        name = f"C{i+1}"
        row = [name]
        if reservations is not None:
            row.append(round(reservations[i] / 1000))
        row.append(round(result.client_kiops(name)))
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Preset runners
# ---------------------------------------------------------------------------

def _run_fig7(quick: bool) -> dict:
    scale, warmup, periods = _scales(quick)
    series = {}
    for access in (AccessMode.ONE_SIDED, AccessMode.TWO_SIDED):
        points = []
        for n in range(1, 11):
            cluster = bare_cluster(
                demands=[SATURATING_OPS] * n, scale=scale, access=access
            )
            result = run_experiment(cluster, warmup_periods=warmup,
                                    measure_periods=periods)
            points.append(round(result.total_kiops()))
        series[access.value] = points
    return {
        "title": "system throughput vs active clients (KIOPS)",
        "header": ["clients", "1-sided", "2-sided"],
        "rows": [
            [n + 1, series["one_sided"][n], series["two_sided"][n]]
            for n in range(10)
        ],
    }


def _make_fig9_runner(distribution: str):
    def runner(quick: bool) -> dict:
        scale, warmup, periods = _scales(quick)
        reservations = reservation_set(
            distribution, PAPER_QOS_POLICY.reserved_fraction * CAPACITY
        )
        demands = paper_demands(
            reservations, PAPER_QOS_POLICY.pool_fraction() * CAPACITY
        )
        haechi = qos_cluster(reservations=reservations, demands=demands,
                             scale=scale)
        h = run_experiment(haechi, warmup_periods=warmup,
                           measure_periods=periods)
        bare = bare_cluster(demands=demands, scale=scale)
        b = run_experiment(bare, warmup_periods=warmup,
                           measure_periods=periods)
        rows = []
        for i, reservation in enumerate(reservations):
            name = f"C{i+1}"
            rows.append([
                name, round(reservation / 1000),
                round(h.client_kiops(name)), round(b.client_kiops(name)),
            ])
        return {
            "title": f"Haechi vs bare ({distribution} reservations, KIOPS)",
            "header": ["client", "reservation", "haechi", "bare"],
            "rows": rows,
            "totals": {"haechi": round(h.total_kiops()),
                       "bare": round(b.total_kiops())},
        }

    return runner


def _run_fig11(quick: bool) -> dict:
    scale, warmup, periods = _scales(quick)
    reservations = reservation_set(
        "zipf", PAPER_QOS_POLICY.reserved_fraction * CAPACITY
    )
    demands = paper_demands(
        reservations, PAPER_QOS_POLICY.pool_fraction() * CAPACITY
    )
    demands[0] = reservations[0] * 0.5
    demands[1] = reservations[1] * 0.5
    totals = {}
    for label, mode in (("haechi", QoSMode.HAECHI),
                        ("basic", QoSMode.BASIC_HAECHI)):
        cluster = qos_cluster(reservations=reservations, demands=demands,
                              qos_mode=mode, scale=scale)
        totals[label] = round(run_experiment(
            cluster, warmup_periods=warmup, measure_periods=periods
        ).total_kiops())
    bare = bare_cluster(demands=demands, scale=scale)
    totals["bare"] = round(run_experiment(
        bare, warmup_periods=warmup, measure_periods=periods
    ).total_kiops())
    return {
        "title": "totals with C1, C2 under-demanding (KIOPS)",
        "header": ["system", "KIOPS"],
        "rows": [[k, v] for k, v in totals.items()],
        "totals": totals,
    }


def _run_fig13(quick: bool) -> dict:
    scale, warmup, periods = _scales(quick)
    reservations = reservation_set(
        "spike", PAPER_QOS_POLICY.reserved_fraction * CAPACITY
    )
    demands = [
        r / PAPER_QOS_POLICY.reserved_fraction for r in reservations
    ]
    out = {}
    for label, pattern, window in (
        ("burst", RequestPattern.BURST, BURST_WINDOW),
        ("constant-rate", RequestPattern.CONSTANT_RATE, None),
    ):
        cluster = qos_cluster(
            reservations=reservations, demands=demands, pattern=pattern,
            window=window, scale=scale,
        )
        out[label] = run_experiment(cluster, warmup_periods=warmup,
                                    measure_periods=periods)
    rows = []
    for i, reservation in enumerate(reservations):
        name = f"C{i+1}"
        rows.append([
            name, round(reservation / 1000),
            round(out["burst"].client_kiops(name)),
            round(out["constant-rate"].client_kiops(name)),
        ])
    return {
        "title": "spike reservations: burst vs constant-rate (KIOPS)",
        "header": ["client", "reservation", "burst", "constant-rate"],
        "rows": rows,
        "totals": {k: round(v.total_kiops()) for k, v in out.items()},
    }


def _make_set4_runner(onset: bool, distribution: str):
    def runner(quick: bool) -> dict:
        scale, warmup, _ = _scales(quick)
        periods = 16 if quick else 30
        switch = periods // 2
        reservations = reservation_set(
            distribution,
            PAPER_CONGESTION_POLICY.reserved_fraction * CAPACITY,
        )
        cluster = qos_cluster(
            reservations=reservations,
            demands=paper_demands(
                reservations,
                PAPER_CONGESTION_POLICY.pool_fraction() * CAPACITY,
            ),
            scale=scale,
        )
        schedule = congestion_schedule(
            onset, switch + warmup, periods + warmup + 2,
            cluster.config.period,
        )
        cluster.add_background_job(schedule=schedule, rate_ops=200_000)
        result = run_experiment(cluster, warmup_periods=warmup,
                                measure_periods=periods)
        series = [round(v) for v in result.total_kiops_series()]
        c1 = [round(v) for v in result.client_kiops_series("C1")]
        direction = "starts" if onset else "stops"
        return {
            "title": f"congestion {direction} at period {switch + 1} "
                     f"({distribution})",
            "header": ["period", "total KIOPS", "C1 KIOPS"],
            "rows": [[i + 1, series[i], c1[i]] for i in range(len(series))],
            "series": {"total": series, "C1": c1},
        }

    return runner


def _run_fabric_incast(quick: bool) -> dict:
    from repro.cluster.fabric_scenarios import run_incast

    ops = 1200 if quick else 4000
    seed = 11
    on = run_incast(seed, cc_enabled=True, ops_per_client=ops)
    off = run_incast(seed, cc_enabled=False, ops_per_client=ops)
    rows = []
    for label, r in (("DCQCN on", on), ("DCQCN off", off)):
        port = r["cc"]["ports"]["server"]
        mk = r["makespan"]
        rows.append([
            label, round(mk * 1e3, 3),
            port["ecn_marks"], r["cc"]["qps"]["cnps_sent"],
            port["pfc_pause_events"],
            round(port["pfc_pause_events"] / mk) if mk else 0,
        ])
    min_rate = on["cc"]["min_congested_rate_bps"]
    return {
        "title": f"{on['num_clients']}:1 incast, 4 KB READs, "
                 f"{ops} ops/client (seed {seed})",
        "header": ["mode", "makespan ms", "ECN marks", "CNPs",
                   "PFC pauses", "pauses/s"],
        "rows": rows,
        "totals": {
            "line_rate_MBps": 6250,
            "min_congested_rate_MBps": round(min_rate / 1e6)
            if min_rate else None,
        },
        "series": {
            "rates_MBps": [round(q["rate_bps"] / 1e6) for q in on["qps"]],
        },
    }


def _run_fabric_throttle(quick: bool) -> dict:
    from repro.cluster.fabric_scenarios import (
        THROTTLE_HIGH_OPS,
        THROTTLE_LOW_OPS,
        run_throttle_vs_cc,
    )

    seed = 11
    measure = 4 if quick else 8
    rows = []
    for label, res in (("token-bound", THROTTLE_LOW_OPS),
                       ("fabric-bound", THROTTLE_HIGH_OPS)):
        r = run_throttle_vs_cc(seed, res, measure=measure)
        att = list(r["attainment"].values())
        port = r["cc"]["ports"]["server"]
        rows.append([
            label, res // 1000, round(r["total_kiops"]),
            round(min(att), 3), round(max(att), 3),
            r["cc"]["qps"]["cnps_sent"], port["pfc_pause_events"],
        ])
    return {
        "title": f"Haechi tokens vs fabric congestion (seed {seed})",
        "header": ["regime", "res KIOPS/client", "total KIOPS",
                   "att min", "att max", "CNPs", "PFC pauses"],
        "rows": rows,
    }


REGISTRY: Dict[str, Preset] = {
    "fig7": Preset("fig7", "throughput vs active clients", _run_fig7),
    "fig9-uniform": Preset("fig9-uniform", "Haechi vs bare, uniform",
                           _make_fig9_runner("uniform")),
    "fig9-zipf": Preset("fig9-zipf", "Haechi vs bare, zipf",
                        _make_fig9_runner("zipf")),
    "fig11": Preset("fig11", "work conservation totals", _run_fig11),
    "fig13": Preset("fig13", "burst vs constant-rate, spike", _run_fig13),
    "fig16": Preset("fig16", "congestion onset timeline (uniform)",
                    _make_set4_runner(True, "uniform")),
    "fig17-zipf": Preset("fig17-zipf", "congestion onset, C1 dip (zipf)",
                         _make_set4_runner(True, "zipf")),
    "fig18": Preset("fig18", "congestion relief timeline (uniform)",
                    _make_set4_runner(False, "uniform")),
    "fabric-incast": Preset(
        "fabric-incast", "8:1 incast on the modeled fabric, DCQCN on/off",
        _run_fabric_incast),
    "fabric-throttle": Preset(
        "fabric-throttle", "token-bound vs fabric-bound QoS attainment",
        _run_fabric_throttle),
}


def get_preset(name: str) -> Preset:
    """Look up a preset; raises ConfigError with the known names."""
    preset = REGISTRY.get(name)
    if preset is None:
        known = ", ".join(sorted(REGISTRY))
        raise ConfigError(f"unknown preset {name!r}; known: {known}")
    return preset
