"""Parallel experiment runner: fan out (scenario, params, seed) cells.

The evaluation suite is embarrassingly parallel at the granularity of a
*cell* — one scenario run at one sweep point with one seed.  This
module runs a list of cells across worker processes and merges the
results **in input-cell order**, so the merged output is byte-identical
regardless of worker count or completion order (each cell is itself a
deterministic simulation; see ``repro.cluster.determinism``).

Results are memoized in an on-disk cache keyed by a hash of the cell's
full configuration.  Cache writes happen only in the parent process and
are atomic (tempfile + ``os.replace``), so a crashed or interrupted run
never leaves a partially written entry: every file present in the cache
directory is a complete, valid result.

Worker processes are forked, so scenario functions only need to be
resolvable through the registry in the parent; a worker that dies or a
scenario that raises fails its own cell only — completed cells are
still cached and reported via :class:`RunnerError`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import multiprocessing
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.common.errors import ConfigError

# Bump when scenario semantics change in a way that invalidates cached
# results (the key hashes this constant).
CACHE_VERSION = 1

Scenario = Callable[[Mapping[str, Any], int], dict]

_SCENARIOS: Dict[str, Scenario] = {}

# Scenarios that register on import of the named module: looking one up
# imports it first, so cells resolve without the caller pre-importing.
_LAZY_SCENARIOS: Dict[str, str] = {
    "hunt-candidate": "repro.hunt.scenario",
    "fluid-scale": "repro.fluid.scenario",
}


def register_scenario(name: str, fn: Optional[Scenario] = None):
    """Register ``fn`` to run cells named ``name`` (usable as decorator).

    A scenario takes ``(params, seed)`` and returns a JSON-serializable
    dict.  It must be deterministic in its arguments: the result cache
    assumes equal keys mean equal results.
    """
    def _register(f: Scenario) -> Scenario:
        if name in _SCENARIOS:
            raise ConfigError(f"scenario {name!r} already registered")
        _SCENARIOS[name] = f
        return f

    return _register(fn) if fn is not None else _register


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name (importing lazily-bound
    scenario modules on first use)."""
    if name not in _SCENARIOS and name in _LAZY_SCENARIOS:
        importlib.import_module(_LAZY_SCENARIOS[name])
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r} (registered: {sorted(_SCENARIOS)})"
        ) from None


# ---------------------------------------------------------------------------
# Cells and cache keys
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Cell:
    """One unit of parallel work: a scenario at one configuration."""

    scenario: str
    params: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    seed: int = 0


def canonical_json(obj: Any) -> str:
    """Stable serialization: sorted keys, no whitespace.

    Float formatting is CPython's shortest-round-trip repr, identical
    across the supported interpreter versions, so equal values always
    produce equal bytes.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def cell_key(cell: Cell) -> str:
    """The cache key: sha256 over the cell's canonical configuration."""
    payload = canonical_json({
        "scenario": cell.scenario,
        "params": dict(cell.params),
        "seed": cell.seed,
        "version": CACHE_VERSION,
    })
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """On-disk result store: one JSON file per cell key.

    Writes go through a tempfile in the cache directory followed by
    ``os.replace`` — atomic on POSIX — so readers (and crashed runs)
    never observe a partial file.  An unreadable or corrupt entry is
    treated as a miss and overwritten on the next put.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The cached payload for ``key``, or None."""
        try:
            with open(self._path(key)) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically persist ``payload`` under ``key``."""
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=f".{key[:16]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(canonical_json(payload))
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
class RunnerError(RuntimeError):
    """One or more cells failed; successful cells were still cached.

    ``errors`` maps input-cell index to the failure description;
    ``results`` holds the per-cell results (None where failed).
    """

    def __init__(self, errors: Dict[int, str], results: List[Optional[dict]]):
        self.errors = errors
        self.results = results
        lines = ", ".join(f"cell {i}: {msg}" for i, msg in sorted(errors.items()))
        super().__init__(f"{len(errors)} cell(s) failed ({lines})")


@dataclasses.dataclass
class RunReport:
    """The merged outcome of a :func:`run_cells` call."""

    cells: List[Cell]
    results: List[dict]
    cache_hits: int
    cache_misses: int
    wall_seconds: float

    def merged_json(self) -> str:
        """Canonical JSON of (cell, result) pairs in input order.

        Byte-identical for any worker count: cell results are
        deterministic and the merge order is the input order.
        """
        return canonical_json([
            {
                "scenario": cell.scenario,
                "params": dict(cell.params),
                "seed": cell.seed,
                "result": result,
            }
            for cell, result in zip(self.cells, self.results)
        ])


def _run_cell(name: str, params: Mapping[str, Any], seed: int) -> dict:
    """Worker entry point (module-level so it pickles under spawn too)."""
    return get_scenario(name)(params, seed)


def _mp_context():
    # Fork keeps scenario registrations made by the parent (e.g. in a
    # conftest) visible to workers without re-importing anything.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context()


def run_cells(
    cells: Sequence[Cell],
    workers: int = 1,
    cache_dir=None,
) -> RunReport:
    """Run every cell; return results merged in input-cell order.

    ``workers=1`` runs inline (no subprocess), which is the reference
    execution; any higher worker count must produce — and is tested to
    produce — a byte-identical :meth:`RunReport.merged_json`.

    With ``cache_dir`` set, cached cells are served without running and
    fresh results are persisted (parent-side, atomically).  Failures
    raise :class:`RunnerError` after all other cells finished, so one
    bad cell cannot waste the rest of the sweep's work.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    started = time.monotonic()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    results: List[Optional[dict]] = [None] * len(cells)
    errors: Dict[int, str] = {}

    pending: List[int] = []
    for i, cell in enumerate(cells):
        if (cell.scenario not in _SCENARIOS
                and cell.scenario not in _LAZY_SCENARIOS):
            raise ConfigError(f"unknown scenario {cell.scenario!r} (cell {i})")
        cached = cache.get(cell_key(cell)) if cache is not None else None
        if cached is not None:
            results[i] = cached["result"]
        else:
            pending.append(i)

    def _record(i: int, result: dict) -> None:
        results[i] = result
        if cache is not None:
            cell = cells[i]
            cache.put(cell_key(cell), {
                "scenario": cell.scenario,
                "params": dict(cell.params),
                "seed": cell.seed,
                "result": result,
            })

    if workers == 1:
        for i in pending:
            cell = cells[i]
            try:
                _record(i, _run_cell(cell.scenario, cell.params, cell.seed))
            except Exception as err:  # noqa: BLE001 - reported via RunnerError
                errors[i] = f"{type(err).__name__}: {err}"
    elif pending:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)), mp_context=_mp_context()
        ) as pool:
            futures = {
                pool.submit(_run_cell, cells[i].scenario,
                            cells[i].params, cells[i].seed): i
                for i in pending
            }
            for future, i in futures.items():
                try:
                    _record(i, future.result())
                except Exception as err:  # noqa: BLE001 - incl. BrokenProcessPool
                    errors[i] = f"{type(err).__name__}: {err}"

    wall = time.monotonic() - started
    if errors:
        raise RunnerError(errors, results)
    return RunReport(
        cells=list(cells),
        results=results,  # type: ignore[arg-type] - no Nones when no errors
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        wall_seconds=wall,
    )


# ---------------------------------------------------------------------------
# Built-in scenarios
# ---------------------------------------------------------------------------
@register_scenario("fig12-point")
def _fig12_point(params: Mapping[str, Any], seed: int) -> dict:
    """One Fig. 12 sweep point: QoS throughput at a reserved fraction.

    params: distribution, fraction, and optionally capacity /
    scale_factor / interval_divisor / warmup / periods (defaults match
    the committed benchmark).
    """
    from repro.cluster.experiment import run_experiment
    from repro.cluster.scale import SimScale
    from repro.cluster.scenarios import qos_cluster, reservation_set

    capacity = params.get("capacity", 1_570_000)
    fraction = params["fraction"]
    scale = SimScale(
        factor=params.get("scale_factor", 500),
        interval_divisor=params.get("interval_divisor", 100),
    )
    reservations = reservation_set(params["distribution"],
                                   fraction * capacity)
    pool = (1 - fraction) * capacity
    demands = [r + pool for r in reservations]
    cluster = qos_cluster(
        reservations=reservations, demands=demands, scale=scale,
        master_seed=seed,
    )
    result = run_experiment(
        cluster,
        warmup_periods=params.get("warmup", 2),
        measure_periods=params.get("periods", 6),
    )
    return {
        "total_kiops": result.total_kiops(),
        "client_kiops": {
            f"C{i+1}": result.client_kiops(f"C{i+1}")
            for i in range(len(reservations))
        },
        "reservations": list(reservations),
    }


def fig12_cells(
    distributions: Sequence[str] = ("uniform", "zipf"),
    fractions: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9),
    seed: int = 0,
    **overrides: Any,
) -> List[Cell]:
    """The pinned Fig. 12 sweep as runner cells."""
    return [
        Cell("fig12-point",
             {"distribution": dist, "fraction": frac, **overrides}, seed)
        for dist in distributions
        for frac in fractions
    ]
