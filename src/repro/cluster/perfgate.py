"""The CI performance gate: catch simulator slowdowns, not slow runners.

Raw wall-clock thresholds are useless across heterogeneous CI hosts, so
the gate normalizes: it times a *calibration* microbenchmark — a
synthetic event loop exercising the same CPython primitives as the
simulator's hot path (heap pushes/pops of time-ordered tuples, Python
callbacks, attribute traffic) — and divides the gate workload's time by
it.  Machine speed cancels to first order; what remains tracks how much
work the simulator does per simulated op, which is exactly what a
performance regression changes.

Usage::

    python -m repro.cluster.perfgate                  # check vs baseline
    python -m repro.cluster.perfgate --write          # re-baseline
    python -m repro.cluster.perfgate --tolerance 0.25

The committed baseline lives at
``benchmarks/results/perf_baseline.json``; a normalized score more than
``tolerance`` (default 25%) above the baseline fails the gate.
"""

from __future__ import annotations

import argparse
import heapq
import json
import sys
import time
from typing import List, Optional

DEFAULT_BASELINE = "benchmarks/results/perf_baseline.json"
DEFAULT_TOLERANCE = 0.25

_CALIBRATION_EVENTS = 300_000


def _calibration_round(events: int = _CALIBRATION_EVENTS) -> float:
    """Seconds of process time for one synthetic event-loop round."""
    heap: list = []
    push = heapq.heappush
    pop = heapq.heappop
    acc = 0
    seq = 0

    def callback(a: int, b: int) -> int:
        return a + b

    start = time.process_time()
    for i in range(events):
        seq += 1
        push(heap, (i * 1e-6, seq, callback, (i, seq)))
        if i & 1:
            _t, _s, fn, args = pop(heap)
            acc += fn(*args)
    while heap:
        _t, _s, fn, args = pop(heap)
        acc += fn(*args)
    return time.process_time() - start


def _workload_round() -> float:
    """Seconds of process time for one gate-workload run.

    The workload is one cell of the pinned Fig. 12 sweep (uniform
    reservations at 70%, K=500) — the configuration the tentpole
    speedup was measured on, run through the same scenario the parallel
    runner uses.
    """
    from repro.cluster.runner import get_scenario

    scenario = get_scenario("fig12-point")
    start = time.process_time()
    scenario({"distribution": "uniform", "fraction": 0.7}, 0)
    return time.process_time() - start


def measure(rounds: int = 5) -> dict:
    """Calibration, workload, and the normalized gate score.

    Calibration and workload rounds are interleaved in time and the
    score is the *median of per-round ratios*: a slow phase of a shared
    CI host inflates the round's calibration and workload together, so
    the ratio stays put where back-to-back block timing would not.
    """
    import statistics

    calibrations = []
    workloads = []
    ratios = []
    for _ in range(rounds):
        calibration = _calibration_round()
        workload = _workload_round()
        calibrations.append(calibration)
        workloads.append(workload)
        ratios.append(workload / calibration)
    return {
        "calibration_seconds": round(statistics.median(calibrations), 4),
        "workload_seconds": round(statistics.median(workloads), 4),
        "normalized": round(statistics.median(ratios), 4),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression (0.25 = 25%%)")
    parser.add_argument("--write", action="store_true",
                        help="write the current measurement as the baseline")
    parser.add_argument("--rounds", type=int, default=5,
                        help="interleaved measurement rounds")
    args = parser.parse_args(argv)

    current = measure(rounds=args.rounds)
    print(f"calibration: {current['calibration_seconds']:.3f}s  "
          f"workload: {current['workload_seconds']:.3f}s  "
          f"normalized: {current['normalized']:.3f}")

    if args.write:
        with open(args.baseline, "w") as fh:
            json.dump(current, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline written to {args.baseline}")
        return 0

    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"cannot read baseline {args.baseline}: {err}", file=sys.stderr)
        return 2
    reference = baseline["normalized"]
    limit = reference * (1.0 + args.tolerance)
    regression = current["normalized"] / reference - 1.0
    print(f"baseline normalized: {reference:.3f}  limit: {limit:.3f}  "
          f"delta: {regression:+.1%}")
    if current["normalized"] > limit:
        print(f"FAIL: normalized score regressed {regression:+.1%} "
              f"(> {args.tolerance:.0%} allowed)", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
