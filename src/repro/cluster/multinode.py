"""Multi-data-node Haechi (the paper's future-work extension).

Scales the deployment to several data nodes: each node runs its own KV
store, QoS monitor and admission controller; each client connects to
every node and runs one QoS engine *per node*, with its reservation
split evenly across nodes.  Keys are striped across nodes (``node =
key % num_nodes``) so a client's aggregate throughput combines its
per-node guarantees — mirroring how single-server token schemes were
extended to clusters in the pTrans/pShift line of work the paper cites.

The client host keeps a single NIC, so the per-client local capacity
``C_L`` remains a *global* constraint across nodes, exactly as it would
on real hardware.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.common.errors import ConfigError
from repro.common.types import QoSMode
from repro.core.admission import AdmissionController
from repro.core.capacity import AdaptiveCapacityEstimator, ProfiledCapacity
from repro.core.engine import QoSEngine
from repro.core.monitor import QoSMonitor
from repro.cluster.calibration import CHAMELEON, DEFAULT_PROFILE_RSD
from repro.cluster.metrics import MetricsCollector
from repro.globalqos.waterfill import even_split
from repro.cluster.scale import SimScale
from repro.kvstore.client import KVClient
from repro.kvstore.server import DataNode
from repro.rdma.cpu import CPUProfile
from repro.rdma.dispatch import ConnectionDispatcher
from repro.rdma.fabric import Fabric
from repro.rdma.nic import NICProfile
from repro.rdma.node import Host
from repro.sim.core import Simulator
from repro.workloads.app import BurstApp, constant_demand


@dataclasses.dataclass
class NodeDeployment:
    """One data node with its QoS machinery."""

    index: int
    host: Host
    data_node: DataNode
    monitor: Optional[QoSMonitor]


class StripedClient:
    """A client striped across all data nodes (one engine per node)."""

    def __init__(self, index: int, name: str, host: Host):
        self.index = index
        self.name = name
        self.host = host
        self.kv_clients: List[KVClient] = []
        self.engines: List[QoSEngine] = []
        self.app = None
        # Connection routing, kept for post-build wiring (the global
        # coordinator registers extra control handlers on these).
        self.router: Optional[ConnectionDispatcher] = None
        self.dispatchers: List = []
        # Aggregate reservation (tokens/period) and its per-node split,
        # kept current by the global coordinator's apply path; the
        # builder seeds them with the static even split.
        self.aggregate_reservation = 0
        self.splits: List[int] = []
        # Per-node submission counts — the demand signal the global
        # coordinator's client agent reports each epoch.
        self.node_submitted: List[int] = []

    def submit(self, key: int, on_complete: Callable) -> None:
        """Route one I/O to the node owning ``key`` (modulo striping)."""
        num_nodes = len(self.kv_clients)
        node = key % num_nodes
        node_key = key // num_nodes
        self.node_submitted[node] += 1
        if self.engines:
            self.engines[node].submit(node_key, on_complete)
        else:
            self.kv_clients[node].get_onesided(
                node_key, on_complete, touch_memory=False
            )

    @property
    def total_completed(self) -> int:
        """Completions across all per-node engines."""
        return sum(engine.total_completed for engine in self.engines)


class MultiNodeCluster:
    """N data nodes x M striped clients under Haechi."""

    def __init__(self, sim: Simulator, scale: SimScale, config,
                 fabric: Fabric, nodes: List[NodeDeployment],
                 clients: List[StripedClient]):
        self.sim = sim
        self.scale = scale
        self.config = config
        self.fabric = fabric
        self.nodes = nodes
        self.clients = clients
        self.metrics = MetricsCollector(sim, config.period)
        self.background_jobs = []
        self._started = False
        self.fault_injector = None
        # Populated by repro.globalqos.attach_coordinator; ``standby``
        # by repro.globalqos.attach_standby (HA failover wiring).
        self.coordinator = None
        self.standby = None
        self.client_agents = []
        self.node_agents = []

    def inject_faults(self, plan, seed: int = 0, tracer=None):
        """Install a seeded fault plan on the fabric (see repro.faults)."""
        from repro.faults.injector import FaultInjector
        from repro.sim.trace import NULL_TRACER

        self.fault_injector = FaultInjector(
            plan, seed=seed, tracer=tracer or NULL_TRACER
        ).install(self.fabric)
        return self.fault_injector

    def add_background_job(self, node_index: int, schedule,
                           rate_ops: float = None, window: int = 64):
        """Attach an unmanaged congestion source against one data node."""
        from repro.rdma.dispatch import TypeDispatcher
        from repro.workloads.background import BackgroundJob

        node = self.nodes[node_index]
        name = f"bg{len(self.background_jobs) + 1}"
        host = self.fabric.add_host(
            Host(self.sim, name, node.host.nic.profile, CPUProfile())
        )
        qp, _ = self.fabric.connect(host, node.host)
        dispatcher = TypeDispatcher()
        host.set_rpc_handler(dispatcher)
        kv = KVClient(
            name, qp, dispatcher,
            layout=node.data_node.store.layout,
            data_rkey=node.data_node.store.region.rkey,
        )
        job = BackgroundJob(self.sim, kv, schedule=schedule,
                            window=window, rate_ops=rate_ops)
        self.background_jobs.append(job)
        return job

    def start(self) -> None:
        """Start every node's QoS periods."""
        if self._started:
            raise ConfigError("cluster already started")
        self._started = True
        for node in self.nodes:
            if node.monitor is not None:
                node.monitor.start()

    def attach_burst_app(self, client: StripedClient, demand_ops: float,
                         window: Optional[int] = None,
                         key_gen=None) -> BurstApp:
        """A burst app driving the striped submitter.

        ``key_gen`` is any object with a ``next() -> int`` method — the
        :mod:`repro.workloads.ycsb` generators (uniform / zipfian /
        scrambled-zipfian / hotspot) plug in directly, making skewed
        multi-node workloads expressible without a custom driver.  When
        omitted, the original sequential scan over the striped keyspace
        is used.
        """
        keyspace = len(self.nodes) * min(
            node.data_node.store.layout.num_slots for node in self.nodes
        )
        if key_gen is not None:
            gen_next = key_gen.next

            def key_fn() -> int:
                return gen_next() % keyspace
        else:
            state = {"next": client.index % keyspace}

            def key_fn() -> int:
                key = state["next"]
                state["next"] = (key + 1) % keyspace
                return key

        hook = self.metrics.hook(client.name)
        client.app = BurstApp(
            sim=self.sim,
            name=client.name,
            submit=client.submit,
            key_fn=key_fn,
            demand_fn=constant_demand(
                self.config.tokens_per_period(demand_ops)
            ),
            period=self.config.period,
            window=window,
            on_complete=hook,
        )
        return client.app


def build_multinode_cluster(
    num_nodes: int,
    num_clients: int,
    reservations_ops: List[float],
    scale: Optional[SimScale] = None,
    qos_mode: QoSMode = QoSMode.HAECHI,
    num_slots: int = 4096,
) -> MultiNodeCluster:
    """Build N data nodes with M clients striped across them.

    ``reservations_ops`` are *aggregate* per-client reservations; each
    node enforces an even ``1/num_nodes`` share of them.
    """
    if num_nodes < 1:
        raise ConfigError(f"num_nodes must be >= 1, got {num_nodes}")
    if len(reservations_ops) != num_clients:
        raise ConfigError("one reservation per client required")
    if qos_mode is QoSMode.BASIC_HAECHI:
        raise ConfigError("multi-node supports HAECHI or BARE")

    scale = scale or SimScale()
    config = scale.config()
    sim = Simulator()
    fabric = Fabric(sim)
    nic_profile = NICProfile.chameleon()
    cpu_profile = CPUProfile()

    nodes: List[NodeDeployment] = []
    for n in range(num_nodes):
        host = fabric.add_host(
            Host(sim, f"server{n + 1}", nic_profile, cpu_profile)
        )
        data_node = DataNode(host, num_slots=num_slots)
        monitor = None
        if qos_mode is QoSMode.HAECHI:
            mean = CHAMELEON.one_sided_system * config.period
            estimator = AdaptiveCapacityEstimator(
                ProfiledCapacity(mean=mean, stddev=mean * DEFAULT_PROFILE_RSD),
                eta=config.eta,
                history_window=config.history_window,
                saturation_tolerance=config.saturation_tolerance,
            )
            admission = AdmissionController(
                global_tokens_per_period=int(mean),
                local_tokens_per_period=int(
                    CHAMELEON.one_sided_client * config.period
                ),
            )
            monitor = QoSMonitor(host, config, estimator, admission=admission,
                                 max_clients=max(64, num_clients))
        nodes.append(NodeDeployment(n, host, data_node, monitor))

    clients: List[StripedClient] = []
    for i in range(num_clients):
        name = f"C{i + 1}"
        host = fabric.add_host(Host(sim, name, nic_profile, cpu_profile))
        router = ConnectionDispatcher()
        host.set_rpc_handler(router)
        striped = StripedClient(i, name, host)
        striped.router = router
        # Split the *aggregate* token reservation, not the ops rate:
        # rounding tokens_per_period(rate / num_nodes) per node could
        # sum below the client's aggregate (up to num_nodes - 1 tokens
        # silently lost).  Largest-remainder over the node index keeps
        # the sum exact and deterministic.
        aggregate_tokens = config.tokens_per_period(reservations_ops[i])
        node_tokens = even_split(aggregate_tokens, num_nodes)
        striped.aggregate_reservation = aggregate_tokens
        striped.splits = list(node_tokens)
        striped.node_submitted = [0] * num_nodes
        for node in nodes:
            qp_cs, qp_sc = fabric.connect(host, node.host)
            dispatcher = router.register_connection(qp_cs)
            striped.dispatchers.append(dispatcher)
            kv = KVClient(
                f"{name}->server{node.index + 1}",
                qp_cs,
                dispatcher,
                layout=node.data_node.store.layout,
                data_rkey=node.data_node.store.region.rkey,
            )
            striped.kv_clients.append(kv)
            if node.monitor is not None:
                per_node_tokens = node_tokens[node.index]
                layout = node.monitor.add_client(i, per_node_tokens, qp_sc)
                striped.engines.append(QoSEngine(
                    client_id=i,
                    kv=kv,
                    layout=layout,
                    config=config,
                    reservation=per_node_tokens,
                    dispatcher=dispatcher,
                    touch_memory=False,
                ))
        clients.append(striped)

    return MultiNodeCluster(sim, scale, config, fabric, nodes, clients)
