"""Capacity profiling (paper Sec. II-E).

The paper profiles by triggering continuous back-to-back 4 KB one-sided
I/Os from 10 clients for one QoS period, repeated 1000 times, and takes
the mean and standard deviation of the per-period completion counts as
``Omega_prof`` and ``sigma``.  :func:`run_profiling` does exactly that
on the simulated testbed (with a configurable repetition count — the
simulator's variance is far below the hardware's, so fewer repetitions
suffice).
"""

from __future__ import annotations

from repro.common.types import AccessMode, QoSMode
from repro.core.capacity import ProfiledCapacity, profile_capacity
from repro.cluster.builder import build_cluster
from repro.cluster.experiment import attach_app, run_experiment
from repro.cluster.scale import SimScale
from repro.workloads.patterns import RequestPattern


def run_profiling(
    num_clients: int = 10,
    periods: int = 50,
    warmup_periods: int = 2,
    scale: SimScale = None,
    access: AccessMode = AccessMode.ONE_SIDED,
) -> ProfiledCapacity:
    """Measure the saturated per-period capacity of a bare cluster.

    Returns a :class:`ProfiledCapacity` in tokens per (dilated) period,
    ready to seed the monitor's estimator.
    """
    scale = scale or SimScale()
    cluster = build_cluster(
        num_clients=num_clients,
        qos_mode=QoSMode.BARE,
        scale=scale,
        access=access,
    )
    # Saturating demand: more than any client could complete in a period.
    saturating = 2_000_000  # ops/s, far above C_L
    for client in cluster.clients:
        attach_app(
            cluster,
            client,
            pattern=RequestPattern.BURST,
            demand_ops=saturating,
            access=access,
        )
    result = run_experiment(
        cluster, warmup_periods=warmup_periods, measure_periods=periods
    )
    return profile_capacity(result.period_totals)
