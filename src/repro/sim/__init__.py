"""Discrete-event simulation kernel.

A small, fast, from-scratch DES engine in the style of simpy:

- :class:`~repro.sim.core.Simulator` — binary-heap event loop with
  deterministic FIFO tie-breaking for simultaneous events.
- :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.Timeout` —
  one-shot waitables.
- :class:`~repro.sim.process.Process` — generator-based cooperative
  processes with interrupt support.
- :mod:`~repro.sim.resources` — semaphores, FIFO stores, and the O(1)
  "next-free-time" :class:`~repro.sim.resources.Pipeline` used to model
  NIC and CPU service stages.
- :mod:`~repro.sim.stats` — time-series probes, counters, and latency
  reservoirs.

The I/O hot path of the RDMA model is callback-based (no generator
resumption per event) so that multi-million-event runs stay tractable in
pure Python.
"""

from repro.sim.core import Simulator
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.process import Process
from repro.sim.resources import Pipeline, Semaphore, Store, TokenBucket
from repro.sim.stats import Counter, LatencyHistogram, LatencyReservoir, TimeSeries

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Event",
    "Interrupt",
    "LatencyHistogram",
    "LatencyReservoir",
    "Pipeline",
    "Process",
    "Semaphore",
    "Simulator",
    "Store",
    "TimeSeries",
    "Timeout",
    "TokenBucket",
]
