"""Shared-resource primitives for the DES kernel.

Four primitives cover everything the RDMA model needs:

- :class:`Pipeline` — a serial FIFO server with O(1) bookkeeping
  ("next-free-time" model).  This is how NIC issue/processing stages and
  the server CPU are modelled: submitting work of cost ``c`` at time ``t``
  completes at ``max(t, free) + c``.
- :class:`Semaphore` — a counting semaphore with event-based acquire,
  used for bounded outstanding work requests on a queue pair.
- :class:`Store` — an unbounded FIFO of items with event-based ``get``,
  used for RPC request queues.
- :class:`TokenBucket` — a continuous-refill rate limiter evaluated in
  *virtual* time, used for the fabric model's per-verb posting buckets
  and anywhere else a deterministic "earliest time n tokens exist"
  answer is needed without simulator events.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.events import Event


class Pipeline:
    """A serial FIFO work server with O(1) next-free-time accounting.

    ``submit(cost)`` reserves the next slot on the pipeline and returns
    the absolute completion time; the caller schedules its own completion
    callback.  Because the pipeline is serial and FIFO, this arithmetic
    model is exactly equivalent to an event-driven single server, at a
    fraction of the event count.

    Busy time is tracked so utilization can be reported.
    """

    __slots__ = ("sim", "name", "_free_at", "_busy")

    def __init__(self, sim: "Simulator", name: str = "pipeline"):  # noqa: F821
        self.sim = sim
        self.name = name
        self._free_at = 0.0
        self._busy = 0.0

    def submit(self, cost: float) -> float:
        """Enqueue work of ``cost`` seconds; return absolute finish time."""
        if cost < 0:
            raise ValueError(f"negative service cost: {cost}")
        now = self.sim.now
        start = self._free_at if self._free_at > now else now
        finish = start + cost
        self._free_at = finish
        self._busy += cost
        return finish

    def charge(self, cost: float) -> float:
        """Consume ``cost`` seconds of capacity without queueing.

        The work completes at ``now + cost`` but still pushes the
        pipeline's next-free-time out by ``cost``, so its capacity
        consumption delays queued bulk work exactly as under a
        weighted-fair arbiter.  Used for small prioritized control
        operations (atomics, 8-byte report writes) that real NICs
        schedule round-robin across QPs rather than FIFO behind bulk
        transfers.
        """
        if cost < 0:
            raise ValueError(f"negative service cost: {cost}")
        now = self.sim.now
        self._free_at = max(self._free_at, now) + cost
        self._busy += cost
        return now + cost

    def submit_at(self, at: float, cost: float) -> float:
        """Enqueue work that *arrives* at virtual time ``at``.

        Like :meth:`submit`, but the work cannot start before ``at``
        even if the pipeline is free earlier — the fabric model uses
        this to chain stages whose hand-off times live in the future
        (host posting finishes at ``at``; the NIC picks the WR up
        then).  ``at`` may be in the past relative to ``sim.now``; the
        pipeline's own free time still serializes correctly.
        """
        if cost < 0:
            raise ValueError(f"negative service cost: {cost}")
        start = self._free_at if self._free_at > at else at
        finish = start + cost
        self._free_at = finish
        self._busy += cost
        return finish

    def pause_until(self, until: float) -> None:
        """Forbid new work from starting before ``until`` (PFC pause).

        Pushes the next-free-time out without accruing busy time: work
        already accepted keeps its completion time (pause does not
        rewrite history), and a later ``pause_until`` with an earlier
        time is a no-op — pauses only ever extend.
        """
        if until > self._free_at:
            self._free_at = until

    @property
    def free_at(self) -> float:
        """Earliest time new work could start service."""
        return self._free_at if self._free_at > self.sim.now else self.sim.now

    @property
    def backlog(self) -> float:
        """Seconds of queued-but-unfinished work."""
        return max(0.0, self._free_at - self.sim.now)

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of [since, now] the pipeline spent busy (approximate:
        counts all submitted work, including the not-yet-finished tail)."""
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy / elapsed)

    def reset_accounting(self) -> None:
        """Zero the busy-time counter (start of a measurement window)."""
        self._busy = 0.0


class Semaphore:
    """Counting semaphore with FIFO event-based acquire."""

    __slots__ = ("sim", "capacity", "_available", "_waiters")

    def __init__(self, sim: "Simulator", capacity: int):  # noqa: F821
        if capacity < 1:
            raise ValueError(f"semaphore capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._available = capacity
        self._waiters: Deque[Event] = deque()

    @property
    def available(self) -> int:
        """Number of currently free slots."""
        return self._available

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self.capacity - self._available

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._available > 0:
            self._available -= 1
            return True
        return False

    def acquire(self) -> Event:
        """An event that succeeds once a slot is held by the caller."""
        ev = Event(self.sim)
        if self._available > 0:
            self._available -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a slot; wakes the oldest waiter if any."""
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            if self._available >= self.capacity:
                raise RuntimeError("semaphore released more times than acquired")
            self._available += 1


class Store:
    """Unbounded FIFO of items with event-based ``get``."""

    __slots__ = ("sim", "_items", "_getters")

    def __init__(self, sim: "Simulator"):  # noqa: F821
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit an item; wakes the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """An event that succeeds with the next item (FIFO order)."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None when empty."""
        if self._items:
            return self._items.popleft()
        return None


class TokenBucket:
    """A continuous-refill token bucket evaluated in virtual time.

    ``acquire(n, at)`` answers "at what absolute time do ``n`` tokens
    exist, assuming the request is made at time ``at``?" and deducts
    them.  The bucket refills at ``rate`` tokens/second up to ``burst``;
    when the balance is short, the returned time is pushed out by the
    deficit divided by the rate.  Pure arithmetic — no simulator events,
    no RNG — so it composes with the Pipeline's next-free-time model and
    stays bit-deterministic.

    Calls must be made with non-decreasing ``at`` per bucket (the
    fabric's per-QP posting timeline guarantees this); a stale ``at``
    simply refills nothing.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError(f"token rate must be positive, got {rate}")
        if burst <= 0:
            raise ValueError(f"token burst must be positive, got {burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.stamp = 0.0

    def acquire(self, n: float, at: float) -> float:
        """Deduct ``n`` tokens; return the absolute time they exist."""
        if at > self.stamp:
            refilled = self.tokens + (at - self.stamp) * self.rate
            self.tokens = refilled if refilled < self.burst else self.burst
            self.stamp = at
        if self.tokens >= n:
            self.tokens -= n
            return at
        # Deficit: the missing tokens accrue from the bucket's own
        # timeline (``stamp``), not the caller's ``at`` — successive
        # under-funded acquires therefore serialize at exactly ``rate``
        # instead of each paying a flat one-token latency.
        wait = (n - self.tokens) / self.rate
        self.tokens = 0.0
        ready = self.stamp + wait
        self.stamp = ready
        return ready
