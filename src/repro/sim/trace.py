"""Structured event tracing.

A :class:`Tracer` collects typed protocol events — period starts, pool
claims, conversions, estimator updates — with their simulated
timestamps, for debugging and for the narrative examples.  Tracing is
opt-in: components default to :data:`NULL_TRACER`, whose ``emit`` is a
no-op, so the hot path pays a single attribute access when disabled.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Set


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: float
    category: str
    event: str
    fields: Dict[str, Any]

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time * 1e3:10.4f} ms] {self.category}.{self.event} {details}"


class Tracer:
    """Collects :class:`TraceRecord` entries, optionally filtered.

    ``categories=None`` records everything; otherwise only the listed
    categories.  ``max_records`` bounds memory: the oldest half is
    dropped when the cap is reached (counts stay exact).
    """

    def __init__(
        self,
        sim,
        categories: Optional[Iterable[str]] = None,
        max_records: int = 100_000,
    ):
        if max_records < 2:
            raise ValueError(f"max_records must be >= 2, got {max_records}")
        self.sim = sim
        self.categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None
        )
        self.max_records = max_records
        self.records: List[TraceRecord] = []
        self.counts: Counter = Counter()
        self.dropped = 0

    def enabled_for(self, category: str) -> bool:
        """Whether events of ``category`` are recorded."""
        return self.categories is None or category in self.categories

    def emit(self, category: str, event: str, **fields: Any) -> None:
        """Record one event (no-op if the category is filtered out)."""
        if not self.enabled_for(category):
            return
        self.counts[f"{category}.{event}"] += 1
        if len(self.records) >= self.max_records:
            drop = len(self.records) // 2
            self.records = self.records[drop:]
            self.dropped += drop
        self.records.append(
            TraceRecord(time=self.sim.now, category=category, event=event,
                        fields=fields)
        )

    def filter(self, category: Optional[str] = None,
               event: Optional[str] = None) -> List[TraceRecord]:
        """Records matching the given category and/or event name."""
        return [
            r for r in self.records
            if (category is None or r.category == category)
            and (event is None or r.event == event)
        ]

    def summary(self) -> Dict[str, int]:
        """Exact event counts (survives record eviction)."""
        return dict(self.counts)

    def export(self) -> Dict[str, Any]:
        """Collection state for exporters; flags truncation explicitly.

        ``emitted`` counts every event ever recorded (eviction-proof),
        ``recorded`` what is still held, and ``dropped`` the evicted
        remainder — so a consumer can tell a complete trace
        (``complete=True``) from a truncated one instead of silently
        under-reporting.
        """
        return {
            "recorded": len(self.records),
            "emitted": sum(self.counts.values()),
            "dropped": self.dropped,
            "complete": self.dropped == 0,
            "counts": dict(self.counts),
        }


class _NullTracer:
    """The disabled tracer: every operation is a cheap no-op."""

    __slots__ = ()

    def enabled_for(self, category: str) -> bool:
        return False

    def emit(self, category: str, event: str, **fields: Any) -> None:
        pass

    def filter(self, category=None, event=None):
        return []

    def summary(self):
        return {}

    def export(self):
        return {"recorded": 0, "emitted": 0, "dropped": 0, "complete": True,
                "counts": {}}


NULL_TRACER = _NullTracer()
