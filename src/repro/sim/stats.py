"""Measurement probes: counters, time series, latency reservoirs.

These are deliberately simulation-agnostic containers; the experiment
harness decides what to record and when to reset for warm-up windows.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


class Counter:
    """A monotonically increasing event counter with window support."""

    __slots__ = ("total", "_window_start")

    def __init__(self) -> None:
        self.total = 0
        self._window_start = 0

    def add(self, n: int = 1) -> None:
        """Count ``n`` more events."""
        self.total += n

    def mark_window(self) -> None:
        """Start a new measurement window at the current total."""
        self._window_start = self.total

    @property
    def in_window(self) -> int:
        """Events counted since the last :meth:`mark_window`."""
        return self.total - self._window_start


class TimeSeries:
    """An append-only list of ``(time, value)`` samples."""

    __slots__ = ("times", "values")

    def __init__(self) -> None:
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one sample."""
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= time < end`` as a new series."""
        out = TimeSeries()
        for t, v in zip(self.times, self.values):
            if start <= t < end:
                out.record(t, v)
        return out

    def items(self) -> Sequence[Tuple[float, float]]:
        """The samples as (time, value) pairs."""
        return list(zip(self.times, self.values))


class LatencyReservoir:
    """Latency sample collector with percentile queries.

    Stores every sample up to ``max_samples``; past that, applies
    deterministic decimation (keeps every k-th sample) so percentile
    queries stay cheap and memory bounded while remaining reproducible.
    """

    def __init__(self, max_samples: int = 200_000):
        if max_samples < 100:
            raise ValueError("max_samples too small for meaningful percentiles")
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._stride = 1
        self._skip = 0
        self.count = 0
        self._sum = 0.0

    def record(self, latency: float) -> None:
        """Record one latency sample (seconds)."""
        self.count += 1
        self._sum += latency
        self._skip += 1
        if self._skip >= self._stride:
            self._skip = 0
            self._samples.append(latency)
            if len(self._samples) >= self.max_samples:
                # Halve the resolution: keep every other retained sample.
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        """Mean over *all* recorded samples (not just retained ones)."""
        return self._sum / self.count if self.count else math.nan

    def percentile(self, pct: float) -> float:
        """The ``pct`` percentile (0-100) over retained samples."""
        if not self._samples:
            return math.nan
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        ordered = sorted(self._samples)
        rank = (pct / 100.0) * (len(ordered) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1 - frac) + ordered[hi] * frac

    def summary(self) -> dict:
        """Mean / p99 / p99.9 in one dict (seconds)."""
        return {
            "mean": self.mean,
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
            "count": self.count,
        }

    def reset(self) -> None:
        """Drop all samples (start of measurement window)."""
        self._samples.clear()
        self._stride = 1
        self._skip = 0
        self.count = 0
        self._sum = 0.0


class LatencyHistogram:
    """Log-bucketed latency histogram with bounded, O(1) recording.

    Buckets are logarithmic between ``min_latency`` and ``max_latency``
    (default 100 ns to 10 s, 40 buckets per decade — HDR-histogram-like
    2.9% relative resolution).  Unlike :class:`LatencyReservoir`, memory
    is fixed regardless of sample count and tail percentiles never
    degrade, at the cost of bucket-width quantization.
    """

    def __init__(self, min_latency: float = 1e-7, max_latency: float = 10.0,
                 buckets_per_decade: int = 40):
        if not 0 < min_latency < max_latency:
            raise ValueError(
                f"need 0 < min_latency < max_latency, got "
                f"{min_latency}, {max_latency}"
            )
        if buckets_per_decade < 1:
            raise ValueError(
                f"buckets_per_decade must be >= 1, got {buckets_per_decade}"
            )
        self.min_latency = min_latency
        self.max_latency = max_latency
        self._log_min = math.log10(min_latency)
        self._per_decade = buckets_per_decade
        decades = math.log10(max_latency) - self._log_min
        self._nbuckets = int(math.ceil(decades * buckets_per_decade)) + 1
        self._counts = [0] * (self._nbuckets + 2)  # +under/overflow
        self.count = 0
        self._sum = 0.0

    def _bucket(self, latency: float) -> int:
        if latency < self.min_latency:
            return 0  # underflow
        if latency >= self.max_latency:
            return self._nbuckets + 1  # overflow
        offset = (math.log10(latency) - self._log_min) * self._per_decade
        return 1 + int(offset)

    def _bucket_upper(self, index: int) -> float:
        # index is 1-based within the log range
        return 10 ** (self._log_min + index / self._per_decade)

    def record(self, latency: float) -> None:
        """Record one latency sample (seconds)."""
        self.count += 1
        self._sum += latency
        self._counts[self._bucket(latency)] += 1

    @property
    def mean(self) -> float:
        """Exact mean over all samples."""
        return self._sum / self.count if self.count else math.nan

    def percentile(self, pct: float) -> float:
        """Upper bound of the bucket holding the ``pct`` percentile."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        if self.count == 0:
            return math.nan
        target = pct / 100.0 * self.count
        running = 0
        for index, bucket_count in enumerate(self._counts):
            running += bucket_count
            if running >= target and bucket_count:
                if index == 0:
                    return self.min_latency
                if index == self._nbuckets + 1:
                    return self.max_latency
                return self._bucket_upper(index)
        return self.max_latency

    def summary(self) -> dict:
        """Mean / p99 / p99.9 / count, like the reservoir's."""
        return {
            "mean": self.mean,
            "p99": self.percentile(99.0),
            "p999": self.percentile(99.9),
            "count": self.count,
        }

    def reset(self) -> None:
        """Drop all samples."""
        self._counts = [0] * (self._nbuckets + 2)
        self.count = 0
        self._sum = 0.0


def mean_and_std(values: Sequence[float]) -> Tuple[float, float]:
    """Sample mean and population standard deviation of ``values``."""
    n = len(values)
    if n == 0:
        return math.nan, math.nan
    mu = sum(values) / n
    var = sum((v - mu) ** 2 for v in values) / n
    return mu, math.sqrt(var)
