"""The simulation event loop.

:class:`Simulator` owns simulated time and a binary heap of scheduled
callbacks.  Entries are ``(time, seq, fn, args)`` tuples; ``seq`` is a
monotone counter so simultaneous events run in schedule order, which makes
every run fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process


class Simulator:
    """A discrete-event simulator with a callback heap.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, print, "one second in")
        sim.process(my_generator(sim))
        sim.run(until=10.0)

    Time is a float in *seconds*.  ``run(until=t)`` executes every event
    with timestamp <= t and leaves ``now == t``.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list = []
        self._seq = 0
        # Optional TelemetryHub (see repro.telemetry.hub).  Every
        # component reaches telemetry through its simulator, so the
        # disabled-mode cost at an instrumentation point is one
        # attribute read plus a None check.
        self.telemetry = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past (time={time}, now={self._now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args))

    # ------------------------------------------------------------------
    # Waitable factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def any_of(self, events) -> AnyOf:
        """An event that succeeds when the first of ``events`` does."""
        return AnyOf(self, list(events))

    def all_of(self, events) -> AllOf:
        """An event that succeeds when every one of ``events`` has."""
        return AllOf(self, list(events))

    def process(self, gen: Generator) -> Process:
        """Spawn a cooperative process from generator ``gen``."""
        return Process(self, gen)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled callback.

        Returns False when the heap is empty.
        """
        if not self._heap:
            return False
        time, _seq, fn, args = heapq.heappop(self._heap)
        self._now = time
        fn(*args)
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the heap drains or ``until`` is reached.

        With ``until`` set, every event with timestamp <= ``until`` runs
        and ``now`` is advanced to exactly ``until`` afterwards.
        """
        heap = self._heap
        if until is None:
            while heap:
                time, _seq, fn, args = heapq.heappop(heap)
                self._now = time
                fn(*args)
            return
        if until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while heap and heap[0][0] <= until:
            time, _seq, fn, args = heapq.heappop(heap)
            self._now = time
            fn(*args)
        self._now = until

    def peek(self) -> Optional[float]:
        """Timestamp of the next scheduled event, or None if idle."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.6f}, pending={len(self._heap)})"
