"""The simulation event loop.

:class:`Simulator` owns simulated time and a binary heap of scheduled
callbacks.  Entries are ``(time, seq, fn, args)`` tuples; ``seq`` is a
monotone counter so simultaneous events run in schedule order, which makes
every run fully deterministic for a fixed seed.

The loop is the single hottest code in the repository — every NIC
serialization, token decay, and report write passes through it — so it
is written for CPython's benefit: ``now`` is a plain attribute (every
``sim.now`` in the datapath would otherwise pay a property descriptor
call), ``schedule`` pushes inline instead of delegating, and ``run``
binds ``heappop`` and the heap to locals.  None of this changes
behaviour; the boundary contract is pinned by ``tests/sim/test_boundary.py``
and the bit-identity of whole runs by the determinism guard
(``repro.cluster.determinism``).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process


class Simulator:
    """A discrete-event simulator with a callback heap.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, print, "one second in")
        sim.process(my_generator(sim))
        sim.run(until=10.0)

    Time is a float in *seconds*.  ``run(until=t)`` executes every event
    with timestamp <= t and leaves ``now == t``.

    ``now`` is a plain read-only-by-convention attribute: only the
    event loop writes it.
    """

    __slots__ = ("now", "_heap", "_seq", "telemetry")

    def __init__(self) -> None:
        #: Current simulated time in seconds.  Read freely; written
        #: only by the event loop.
        self.now = 0.0
        self._heap: list = []
        self._seq = 0
        # Optional TelemetryHub (see repro.telemetry.hub).  Every
        # component reaches telemetry through its simulator, so the
        # disabled-mode cost at an instrumentation point is one
        # attribute read plus a None check.
        self.telemetry = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args))

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past (time={time}, now={self.now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args))

    # ------------------------------------------------------------------
    # Waitable factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that succeeds after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def any_of(self, events) -> AnyOf:
        """An event that succeeds when the first of ``events`` does."""
        return AnyOf(self, list(events))

    def all_of(self, events) -> AllOf:
        """An event that succeeds when every one of ``events`` has."""
        return AllOf(self, list(events))

    def process(self, gen: Generator) -> Process:
        """Spawn a cooperative process from generator ``gen``."""
        return Process(self, gen)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next scheduled callback.

        Returns False when the heap is empty.
        """
        if not self._heap:
            return False
        time, _seq, fn, args = heapq.heappop(self._heap)
        self.now = time
        fn(*args)
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the heap drains or ``until`` is reached.

        With ``until`` set, every event with timestamp <= ``until`` runs
        and ``now`` is advanced to exactly ``until`` afterwards.
        """
        heap = self._heap
        pop = heapq.heappop
        if until is None:
            while heap:
                time, _seq, fn, args = pop(heap)
                self.now = time
                fn(*args)
            return
        if until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        # heap[0][0] is re-read every iteration on purpose: a callback
        # running at t == until may schedule another event at exactly
        # until, and that event belongs to this window (pinned by
        # tests/sim/test_boundary.py).
        while heap and heap[0][0] <= until:
            time, _seq, fn, args = pop(heap)
            self.now = time
            fn(*args)
        self.now = until

    def peek(self) -> Optional[float]:
        """Timestamp of the next scheduled event, or None if idle."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.6f}, pending={len(self._heap)})"
