"""Waitable events for the DES kernel.

An :class:`Event` is a one-shot waitable: callbacks registered before it
triggers run (in registration order) when it does.  :class:`Timeout` is an
event pre-scheduled to succeed at ``now + delay``.  :class:`AnyOf`
triggers when the first of its children triggers.

Events deliberately carry very little state (``__slots__``) because the
RDMA hot path allocates one per posted work request.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class Interrupt(Exception):
    """Raised inside a process generator when it is interrupted.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot waitable.

    The lifecycle is: *pending* -> ``succeed(value)`` or ``fail(exc)`` ->
    callbacks run.  Triggering twice is a programming error and raises
    :class:`RuntimeError`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exc", "triggered")

    def __init__(self, sim: "Simulator"):  # noqa: F821 (forward ref)
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self.triggered = False

    @property
    def value(self) -> Any:
        """The success value (``None`` until triggered)."""
        return self._value

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exc is None

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, if the event failed."""
        return self._exc

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event triggers.

        If the event has already triggered, ``fn`` runs immediately.
        """
        if self.triggered:
            fn(self)
        else:
            self.callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        self._trigger(value, None)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed with ``exc``."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(None, exc)
        return self

    def _trigger(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self._value = value
        self._exc = exc
        callbacks, self.callbacks = self.callbacks, None
        for fn in callbacks:
            fn(self)


class Timeout(Event):
    """An event that succeeds ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        sim.schedule(delay, self._expire, value)

    def _expire(self, value: Any) -> None:
        if not self.triggered:
            self.succeed(value)


class AnyOf(Event):
    """Triggers (successfully) when the first child event triggers.

    The value is the child event that fired first.  A failing child fails
    the AnyOf with the child's exception.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: List[Event]):  # noqa: F821
        super().__init__(sim)
        if not events:
            raise ValueError("AnyOf requires at least one event")
        for ev in events:
            ev.add_callback(self._child_fired)

    def _child_fired(self, child: Event) -> None:
        if self.triggered:
            return
        if child.ok:
            self.succeed(child)
        else:
            self.fail(child.exception)


class AllOf(Event):
    """Triggers when every child has triggered.

    Succeeds with the list of child values (in construction order)
    once all children succeed; fails fast with the first child failure.
    """

    __slots__ = ("_children", "_remaining")

    def __init__(self, sim: "Simulator", events: List[Event]):  # noqa: F821
        super().__init__(sim)
        if not events:
            raise ValueError("AllOf requires at least one event")
        self._children = list(events)
        self._remaining = len(self._children)
        for ev in self._children:
            ev.add_callback(self._child_fired)

    def _child_fired(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev.value for ev in self._children])
