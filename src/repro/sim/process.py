"""Generator-based cooperative processes.

A :class:`Process` drives a Python generator: the generator ``yield``\\ s
:class:`~repro.sim.events.Event` objects and is resumed with the event's
value when it triggers.  A process is itself an event that succeeds with
the generator's return value, so processes can wait on each other.

Processes may be interrupted: :meth:`Process.interrupt` raises
:class:`~repro.sim.events.Interrupt` inside the generator at its current
yield point.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.events import Event, Interrupt


class Process(Event):
    """A running cooperative process (also a waitable event).

    Created through :meth:`repro.sim.core.Simulator.process`.  The first
    resumption happens via an immediately-scheduled callback, so a process
    never runs synchronously inside its spawner.
    """

    __slots__ = ("_gen", "_waiting_on", "alive")

    def __init__(self, sim: "Simulator", gen: Generator):  # noqa: F821
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise TypeError(f"process target must be a generator, got {type(gen)!r}")
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self.alive = True
        sim.schedule(0.0, self._resume, None, None)

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its yield point.

        Interrupting a finished process is a no-op.
        """
        if not self.alive:
            return
        # Detach from whatever the process was waiting on; the stale event
        # callback checks ``_waiting_on`` identity before resuming.
        self._waiting_on = None
        self.sim.schedule(0.0, self._resume, None, Interrupt(cause))

    # ------------------------------------------------------------------
    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # interrupted while waiting; stale wakeup
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.exception)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self.alive:
            return
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.succeed(stop.value)
            return
        except Interrupt:
            # Generator chose not to handle its interrupt: treat as a
            # clean, deliberate exit.
            self.alive = False
            self.succeed(None)
            return
        except BaseException as err:
            self.alive = False
            self.fail(err)
            return
        if not isinstance(target, Event):
            self.alive = False
            err = TypeError(f"process yielded non-event {target!r}")
            self.fail(err)
            return
        self._waiting_on = target
        target.add_callback(self._on_event)
