"""The scenario parameter space the anomaly hunt searches.

A :class:`ScenarioSpec` is one point in the space: a typed, frozen,
JSON-round-trippable genome describing a whole run — client count,
reservation mix, limits, demand and burstiness, run length, and a list
of :class:`FaultGene` events (the fault-plan genome, kept in *period*
units so mutation is scale-free; :meth:`ScenarioSpec.compile_plan`
lowers it to an absolute-time :class:`~repro.faults.plan.FaultPlan`).

Operators are all seeded: :func:`random_spec` samples the space,
:func:`mutate` perturbs one gene or edits the fault list, and
:func:`crossover` mixes two parents.  Every operator goes through
:func:`clamp_spec`, the single place where cross-gene validity lives
(fault windows inside the faulted region, victims within the client
count, spike needs enough clients), so search code never produces a
spec the executor rejects.

The gene table also records each gene's **floor** — the simplest value
— which is what delta-debugging shrinks toward (see
:mod:`repro.hunt.minimize`).
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.faults.plan import (
    Brownout,
    CrashWindow,
    DelayRule,
    DropRule,
    FaultPlan,
    OpFilter,
    PartitionRule,
    QPCloseFault,
    SlowdownRule,
)

SPEC_SCHEMA_VERSION = 4

#: Schema versions :meth:`ScenarioSpec.from_dict` still reads.  v1
#: specs (pre-tenancy) load with ``tenant_count=0, fluid_mode=False``,
#: v2 specs (pre-fabric) with ``fabric_mode=False``, v3 specs
#: (pre-policy) with ``policy_version=0`` — all reproduce their exact
#: historical behaviour.
COMPAT_SCHEMA_VERSIONS = (1, 2, 3, SPEC_SCHEMA_VERSION)

# Liveness oracles need a fault-free tail to converge in; probabilistic
# and windowed faults are clamped to end before it.  (Permanent events
# — qp-close, no-restart crashes — intentionally violate it: finding
# what breaks when a fault never clears is the point.)
SETTLE_PERIODS = 2

# Per-client reservation ceiling (ops/s) so small-client-count specs
# stay inside the admission controller's local cap.
PER_CLIENT_RESERVATION_CAP = 300_000.0

# The paper testbed's saturated capacity (ops/s), the reservation base.
CAPACITY_OPS = 1_570_000.0

FAULT_KINDS = (
    "control-drop",   # control-plane op loss storm
    "delay-spike",    # control-plane delay spikes
    "brownout",       # server NIC capacity reduction
    "qp-close",       # abrupt client<->server connection loss
    "client-crash",   # client dark for a window (or forever)
    "partition",      # directional victim->server link cut
    "fail-slow",      # server gray failure (every op costs more)
)

DISTRIBUTIONS = ("uniform", "zipf", "spike")
PATTERNS = ("burst", "constant-rate")

# Spike's 3-hot shape needs enough clients to be meaningful.
MIN_CLIENTS_FOR_SPIKE = 4

MIN_PERIODS = 6

# Client-count ceilings are *mode-dependent*: exact-DES candidates pay
# per-op event costs, so the ceiling stays small; fluid-mode candidates
# aggregate same-class clients into flows (O(flows) per period), so the
# hunt can search the 10^2-10^4 client regime the hierarchy exists for.
# (The old single hard-coded ceiling of 6 silently clamped any larger
# genome back into the DES range.)
MAX_CLIENTS_DES = 6
MAX_CLIENTS_FLUID = 20_000
MAX_TENANTS = 4
# Fluid-mode candidates use a fixed two-groups-per-tenant shape, so a
# victim index maps deterministically onto a flow class.
FLUID_GROUPS_PER_TENANT = 2

# Hot-swap genome ceiling: how many mid-run policy revisions the
# executor will synthesize and apply through the decrease-before-
# increase path.  Exact-DES only — the fluid engine takes resizes
# through apply_hierarchy, not per-client policy pushes.
MAX_POLICY_VERSION = 3


@dataclasses.dataclass(frozen=True)
class FaultGene:
    """One fault event in period-relative coordinates.

    ``start``/``duration`` are in QoS periods; ``client`` is a victim
    index interpreted modulo the spec's client count (so crossover
    between specs with different client counts stays valid).
    ``permanent`` turns a client-crash into a no-restart crash and is
    ignored for other kinds.
    """

    kind: str
    start: float = 1.0
    duration: float = 1.0
    client: int = 0
    rate: float = 0.2
    factor: float = 0.5
    permanent: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault gene kind {self.kind!r} (know {FAULT_KINDS})"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind, "start": self.start,
            "duration": self.duration, "client": self.client,
            "rate": self.rate, "factor": self.factor,
            "permanent": self.permanent,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultGene":
        return cls(**payload)


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """One point of the scenario space (see module docstring)."""

    num_clients: int = 3
    distribution: str = "uniform"
    reserved_fraction: float = 0.7
    demand_factor: float = 1.2
    limit_factor: Optional[float] = None
    pattern: str = "burst"
    periods: int = 8
    faults: Tuple[FaultGene, ...] = ()
    # Tenancy genes (schema v2): ``tenant_count == 0`` means flat (no
    # hierarchy, the v1 behaviour); with a hierarchy, DES candidates
    # bind it to the exact cluster while ``fluid_mode`` switches the
    # executor to the aggregated flow engine.
    tenant_count: int = 0
    fluid_mode: bool = False
    # Fabric gene (schema v3): run the candidate on the congestion-
    # controlled datapath (repro.rdma.cc) so the hunt can search for
    # anomalies that only appear under PCIe posting costs, bounded SQs,
    # DCQCN pacing, and PFC pauses.  Exact-DES only: the fluid engine
    # has no per-op datapath, so clamp_spec turns it off under
    # fluid_mode.
    fabric_mode: bool = False
    # Policy gene (schema v4): number of mid-run hot-swapped policy
    # revisions.  0 (the floor) means no policy traffic — byte-for-byte
    # the v3 behaviour; k > 0 makes the executor synthesize k revisions
    # that re-shape the reservation mix mid-stream through the
    # decrease-before-increase path, arming the policy-audit and
    # no-stale-policy oracles.  Exact-DES only (clamped to 0 in fluid
    # mode).
    policy_version: int = 0

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ConfigError(
                f"num_clients must be >= 1, got {self.num_clients}"
            )
        if self.tenant_count < 0:
            raise ConfigError(
                f"tenant_count must be >= 0, got {self.tenant_count}"
            )
        if self.policy_version < 0:
            raise ConfigError(
                f"policy_version must be >= 0, got {self.policy_version}"
            )
        # fluid_mode with tenant_count == 0 is repaired (not rejected)
        # by clamp_spec, so shrink/mutate operators may build the
        # intermediate value freely.
        if self.distribution not in DISTRIBUTIONS:
            raise ConfigError(
                f"unknown distribution {self.distribution!r}"
            )
        if self.pattern not in PATTERNS:
            raise ConfigError(f"unknown pattern {self.pattern!r}")
        if self.periods < MIN_PERIODS:
            raise ConfigError(
                f"periods must be >= {MIN_PERIODS}, got {self.periods}"
            )

    # ------------------------------------------------------------------
    def total_reserved_ops(self) -> float:
        """Aggregate reservation, admission-cap clamped."""
        return min(
            self.reserved_fraction * CAPACITY_OPS,
            self.num_clients * PER_CLIENT_RESERVATION_CAP,
        )

    def victim(self, gene: FaultGene) -> str:
        """The host name a fault gene targets.

        DES candidates target client hosts (``C<k>``); fluid-mode
        candidates target flow classes, so the victim index wraps onto
        the ``T<t>/g<g>`` flow-name grid instead.
        """
        if self.fluid_mode:
            flows = max(1, self.tenant_count) * FLUID_GROUPS_PER_TENANT
            idx = gene.client % flows
            tenant = idx // FLUID_GROUPS_PER_TENANT + 1
            group = idx % FLUID_GROUPS_PER_TENANT + 1
            return f"T{tenant}/g{group}"
        return f"C{gene.client % self.num_clients + 1}"

    def fault_end_period(self) -> float:
        """Where windowed faults must end (start of the settle tail)."""
        return float(self.periods - SETTLE_PERIODS)

    def compile_plan(self, config) -> FaultPlan:
        """Lower the fault genome to an absolute-time fault plan."""
        T = config.period
        fault_end = self.fault_end_period() * T
        drops: List[DropRule] = []
        delays: List[DelayRule] = []
        brownouts: List[Brownout] = []
        qp_closes: List[QPCloseFault] = []
        crashes: List[CrashWindow] = []
        partitions: List[PartitionRule] = []
        slowdowns: List[SlowdownRule] = []
        for gene in self.faults:
            start = min(gene.start * T, fault_end - config.check_interval)
            end = min(start + gene.duration * T, fault_end)
            if gene.kind == "control-drop":
                drops.append(DropRule(
                    rate=gene.rate,
                    where=OpFilter(control_only=True, start=start, end=end),
                    label="hunt-drop",
                ))
            elif gene.kind == "delay-spike":
                delays.append(DelayRule(
                    rate=gene.rate,
                    delay=2 * config.check_interval,
                    jitter=config.check_interval,
                    where=OpFilter(control_only=True, start=start, end=end),
                    label="hunt-delay",
                ))
            elif gene.kind == "brownout":
                brownouts.append(Brownout(
                    host="server", start=start, end=end, factor=gene.factor,
                ))
            elif gene.kind == "qp-close":
                qp_closes.append(QPCloseFault(
                    src=self.victim(gene), dst="server", time=start,
                ))
            elif gene.kind == "client-crash":
                crash_end = math.inf if gene.permanent else end
                crashes.append(CrashWindow(
                    host=self.victim(gene), start=start, end=crash_end,
                ))
            elif gene.kind == "partition":
                partitions.append(PartitionRule(
                    src=self.victim(gene), dst="server",
                    start=start, end=end, label="hunt-partition",
                ))
            elif gene.kind == "fail-slow":
                # gene.factor is a capacity fraction (brownout idiom);
                # the slowdown rule wants a cost multiplier >= 1.
                slowdowns.append(SlowdownRule(
                    host="server", start=start, end=end,
                    factor=round(1.0 / gene.factor, 4),
                ))
        return FaultPlan(
            drops=tuple(drops), delays=tuple(delays),
            brownouts=tuple(brownouts), qp_closes=tuple(qp_closes),
            crashes=tuple(crashes),
            partitions=tuple(partitions), slowdowns=tuple(slowdowns),
            drop_fail_after=config.check_interval,
        )

    def dark_at_end(self) -> Tuple[str, ...]:
        """Hosts inside a crash window when the run ends — excused from
        the liveness oracles (a permanently dead client not making its
        reservation is the fault's definition, not an anomaly)."""
        dark = []
        for gene in self.faults:
            if gene.kind == "client-crash":
                end = math.inf if gene.permanent else (
                    min(gene.start + gene.duration, self.fault_end_period())
                )
                if end >= self.periods:
                    dark.append(self.victim(gene))
        return tuple(sorted(set(dark)))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "num_clients": self.num_clients,
            "distribution": self.distribution,
            "reserved_fraction": self.reserved_fraction,
            "demand_factor": self.demand_factor,
            "limit_factor": self.limit_factor,
            "pattern": self.pattern,
            "periods": self.periods,
            "faults": [gene.to_dict() for gene in self.faults],
            "tenant_count": self.tenant_count,
            "fluid_mode": self.fluid_mode,
            "fabric_mode": self.fabric_mode,
            "policy_version": self.policy_version,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioSpec":
        version = payload.get("schema_version")
        if version not in COMPAT_SCHEMA_VERSIONS:
            raise ConfigError(
                f"unsupported scenario-spec schema version {version!r} "
                f"(this build reads versions {COMPAT_SCHEMA_VERSIONS})"
            )
        return cls(
            num_clients=payload["num_clients"],
            distribution=payload["distribution"],
            reserved_fraction=payload["reserved_fraction"],
            demand_factor=payload["demand_factor"],
            limit_factor=payload.get("limit_factor"),
            pattern=payload["pattern"],
            periods=payload["periods"],
            faults=tuple(
                FaultGene.from_dict(g) for g in payload["faults"]
            ),
            # v1 payloads carry neither tenancy key (flat, exact-DES),
            # v2 payloads no fabric key (historical NIC-only datapath),
            # v3 payloads no policy key (no mid-run hot-swaps) — all
            # load with their semantics bit for bit.
            tenant_count=payload.get("tenant_count", 0),
            fluid_mode=payload.get("fluid_mode", False),
            fabric_mode=payload.get("fabric_mode", False),
            policy_version=payload.get("policy_version", 0),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Gene table: bounds and floors (what the minimizer shrinks toward)
# ---------------------------------------------------------------------------
INT_GENES = {
    # name: (lo, hi, floor) — num_clients' hi is the DES ceiling; fluid
    # mode raises it to MAX_CLIENTS_FLUID in clamp_spec.
    "num_clients": (1, MAX_CLIENTS_DES, 1),
    "periods": (MIN_PERIODS, 12, MIN_PERIODS),
    "tenant_count": (0, MAX_TENANTS, 0),
    "policy_version": (0, MAX_POLICY_VERSION, 0),
}
FLOAT_GENES = {
    # name: (lo, hi, floor)
    "reserved_fraction": (0.3, 0.95, 0.5),
    "demand_factor": (1.0, 2.0, 1.0),
}
CHOICE_GENES = {
    # name: (choices, floor)
    "distribution": (DISTRIBUTIONS, "uniform"),
    "pattern": (PATTERNS, "burst"),
}
# limit_factor is Optional: None (floor) or a multiple of the
# reservation in [1.05, 2.0] — >= 1 so a limit can never contradict the
# reservation it coexists with.
LIMIT_RANGE = (1.05, 2.0)

MAX_FAULT_GENES = 4


def clamp_spec(spec: ScenarioSpec) -> ScenarioSpec:
    """Project an arbitrary gene assignment back into the valid space.

    Single choke point for cross-gene constraints, applied after every
    random sample / mutation / crossover so operators can be sloppy.
    """
    # The client-count ceiling depends on the execution mode: the old
    # unconditional clamp to the DES ceiling made every large genome
    # collapse back to <= 6 clients, which is exactly the space the
    # fluid engine exists to search.
    fluid_mode = bool(spec.fluid_mode)
    # The fabric datapath is per-op, so it only exists in exact DES.
    fabric_mode = bool(spec.fabric_mode) and not fluid_mode
    # Policy pushes address per-client agents; the fluid engine has
    # none, so the gene collapses to its floor there.
    policy_version = min(max(spec.policy_version, 0), MAX_POLICY_VERSION)
    if fluid_mode:
        policy_version = 0
    tenant_count = min(max(spec.tenant_count, 0), MAX_TENANTS)
    if fluid_mode:
        tenant_count = max(1, tenant_count)
    ceiling = MAX_CLIENTS_FLUID if fluid_mode else MAX_CLIENTS_DES
    num_clients = min(max(spec.num_clients, INT_GENES["num_clients"][0]),
                      ceiling)
    if fluid_mode:
        # Every (tenant, group) class needs at least one client.
        num_clients = max(
            num_clients, tenant_count * FLUID_GROUPS_PER_TENANT
        )
    else:
        # A DES hierarchy puts each client in its own leaf group, so a
        # tenant with zero members is meaningless.
        tenant_count = min(tenant_count, num_clients)
    periods = min(max(spec.periods, INT_GENES["periods"][0]),
                  INT_GENES["periods"][1])
    distribution = spec.distribution
    if distribution == "spike" and num_clients < MIN_CLIENTS_FOR_SPIKE:
        distribution = "zipf"
    lo, hi = FLOAT_GENES["reserved_fraction"][:2]
    reserved = min(max(spec.reserved_fraction, lo), hi)
    lo, hi = FLOAT_GENES["demand_factor"][:2]
    demand = min(max(spec.demand_factor, lo), hi)
    limit = spec.limit_factor
    if limit is not None:
        limit = min(max(limit, LIMIT_RANGE[0]), LIMIT_RANGE[1])

    fault_end = float(periods - SETTLE_PERIODS)
    genes: List[FaultGene] = []
    for gene in spec.faults[:MAX_FAULT_GENES]:
        start = min(max(gene.start, 0.5), fault_end - 0.25)
        duration = min(max(gene.duration, 0.25), fault_end - start)
        genes.append(FaultGene(
            kind=gene.kind,
            start=round(start, 4),
            duration=round(duration, 4),
            client=gene.client % num_clients,
            rate=round(min(max(gene.rate, 0.01), 1.0), 4),
            factor=round(min(max(gene.factor, 0.05), 0.95), 4),
            permanent=gene.permanent and gene.kind == "client-crash",
        ))
    return ScenarioSpec(
        num_clients=num_clients,
        distribution=distribution,
        reserved_fraction=round(reserved, 4),
        demand_factor=round(demand, 4),
        limit_factor=None if limit is None else round(limit, 4),
        pattern=spec.pattern,
        periods=periods,
        faults=tuple(genes),
        tenant_count=tenant_count,
        fluid_mode=fluid_mode,
        fabric_mode=fabric_mode,
        policy_version=policy_version,
    )


# ---------------------------------------------------------------------------
# Seeded operators
# ---------------------------------------------------------------------------
def random_fault_gene(rng, periods: int) -> FaultGene:
    """Sample one fault event uniformly over the genome's ranges."""
    fault_end = periods - SETTLE_PERIODS
    kind = rng.choice(FAULT_KINDS)
    start = 0.5 + rng.random() * max(fault_end - 1.0, 0.5)
    return FaultGene(
        kind=kind,
        start=round(start, 4),
        duration=round(0.25 + rng.random() * 2.0, 4),
        client=rng.randrange(INT_GENES["num_clients"][1]),
        rate=round(0.05 + rng.random() * 0.45, 4),
        factor=round(0.1 + rng.random() * 0.8, 4),
        permanent=(kind == "client-crash" and rng.random() < 0.3),
    )


def random_spec(rng) -> ScenarioSpec:
    """One uniformly-drawn point of the scenario space.

    A quarter of the draws land in fluid mode, where the client count
    is log-uniform over 10^2-10^4 — the hierarchical regime the DES
    ceiling used to make unreachable.
    """
    fluid_mode = rng.random() < 0.25
    # A quarter of the exact-DES draws run on the modeled fabric.
    fabric_mode = (not fluid_mode) and rng.random() < 0.25
    tenant_count = rng.randint(1 if fluid_mode else 0, MAX_TENANTS)
    if fluid_mode:
        num_clients = int(round(10 ** rng.uniform(2.0, 4.0)))
    else:
        lo, hi = INT_GENES["num_clients"][:2]
        num_clients = rng.randint(lo, hi)
    lo, hi = INT_GENES["periods"][:2]
    periods = rng.randint(lo, hi)
    num_faults = rng.randint(0, MAX_FAULT_GENES)
    faults = tuple(
        random_fault_gene(rng, periods) for _ in range(num_faults)
    )
    # Drawn LAST so every pre-v4 gene of a given seed keeps its v3
    # value — only draws after this point shift across the schema bump.
    policy_version = (rng.randint(1, MAX_POLICY_VERSION)
                      if rng.random() < 0.25 else 0)
    return clamp_spec(ScenarioSpec(
        num_clients=num_clients,
        tenant_count=tenant_count,
        fluid_mode=fluid_mode,
        fabric_mode=fabric_mode,
        distribution=rng.choice(DISTRIBUTIONS),
        reserved_fraction=FLOAT_GENES["reserved_fraction"][0] + rng.random()
        * (FLOAT_GENES["reserved_fraction"][1]
           - FLOAT_GENES["reserved_fraction"][0]),
        demand_factor=FLOAT_GENES["demand_factor"][0] + rng.random()
        * (FLOAT_GENES["demand_factor"][1] - FLOAT_GENES["demand_factor"][0]),
        limit_factor=(None if rng.random() < 0.6
                      else LIMIT_RANGE[0] + rng.random()
                      * (LIMIT_RANGE[1] - LIMIT_RANGE[0])),
        pattern=rng.choice(PATTERNS),
        periods=periods,
        faults=faults,
        policy_version=policy_version,
    ))


def _perturb_gene(gene: FaultGene, rng) -> FaultGene:
    field = rng.choice(("start", "duration", "rate", "factor", "client",
                        "permanent"))
    changes = {}
    if field in ("start", "duration"):
        changes[field] = getattr(gene, field) * (0.5 + rng.random())
    elif field in ("rate", "factor"):
        changes[field] = getattr(gene, field) + (rng.random() - 0.5) * 0.3
    elif field == "client":
        changes[field] = gene.client + rng.randint(1, 3)
    else:
        changes[field] = not gene.permanent
    return dataclasses.replace(gene, **changes)


def mutate(spec: ScenarioSpec, rng) -> ScenarioSpec:
    """One mutation step: perturb a scalar gene or edit the fault list.

    The operator menu is weighted toward the fault genome — the
    interesting breakage lives there — but every gene is reachable so
    neighborhood search can leave any local plateau.
    """
    ops = ["scalar", "fault-edit", "fault-edit"]
    if len(spec.faults) < MAX_FAULT_GENES:
        ops.append("fault-add")
    if spec.faults:
        ops.append("fault-del")
    op = rng.choice(ops)
    if op == "fault-add":
        faults = spec.faults + (random_fault_gene(rng, spec.periods),)
        return clamp_spec(dataclasses.replace(spec, faults=faults))
    if op == "fault-del":
        idx = rng.randrange(len(spec.faults))
        faults = spec.faults[:idx] + spec.faults[idx + 1:]
        return clamp_spec(dataclasses.replace(spec, faults=faults))
    if op == "fault-edit" and spec.faults:
        idx = rng.randrange(len(spec.faults))
        edited = _perturb_gene(spec.faults[idx], rng)
        faults = spec.faults[:idx] + (edited,) + spec.faults[idx + 1:]
        return clamp_spec(dataclasses.replace(spec, faults=faults))

    name = rng.choice(sorted(INT_GENES) + sorted(FLOAT_GENES)
                      + sorted(CHOICE_GENES)
                      + ["limit_factor", "fluid_mode", "fabric_mode"])
    if name == "fluid_mode":
        return clamp_spec(dataclasses.replace(
            spec, fluid_mode=not spec.fluid_mode
        ))
    if name == "fabric_mode":
        return clamp_spec(dataclasses.replace(
            spec, fabric_mode=not spec.fabric_mode
        ))
    if name in INT_GENES:
        if name == "num_clients" and spec.fluid_mode:
            # Additive +/-2 steps cannot traverse a 10^2-10^4 range;
            # fluid client counts mutate multiplicatively.
            value = max(1, int(round(
                spec.num_clients * rng.choice((0.3, 0.5, 2.0, 3.0))
            )))
        else:
            value = getattr(spec, name) + rng.choice((-2, -1, 1, 2))
        return clamp_spec(dataclasses.replace(spec, **{name: max(
            value, INT_GENES[name][0])}))
    if name in FLOAT_GENES:
        lo, hi = FLOAT_GENES[name][:2]
        value = getattr(spec, name) + (rng.random() - 0.5) * (hi - lo) * 0.4
        return clamp_spec(dataclasses.replace(spec, **{name: value}))
    if name == "limit_factor":
        if spec.limit_factor is None:
            value = LIMIT_RANGE[0] + rng.random() * (
                LIMIT_RANGE[1] - LIMIT_RANGE[0])
        else:
            value = None
        return clamp_spec(dataclasses.replace(spec, limit_factor=value))
    choices = CHOICE_GENES[name][0]
    return clamp_spec(dataclasses.replace(
        spec, **{name: rng.choice(choices)}
    ))


def crossover(a: ScenarioSpec, b: ScenarioSpec, rng) -> ScenarioSpec:
    """Uniform crossover: each scalar gene from a random parent, fault
    lists spliced."""
    def pick(name):
        return getattr(a if rng.random() < 0.5 else b, name)

    cut_a = rng.randint(0, len(a.faults))
    cut_b = rng.randint(0, len(b.faults))
    # fluid_mode and tenant_count travel together: a fluid client count
    # only makes sense next to the mode flag that licensed it.
    mode_parent = a if rng.random() < 0.5 else b
    return clamp_spec(ScenarioSpec(
        num_clients=mode_parent.num_clients,
        tenant_count=mode_parent.tenant_count,
        fluid_mode=mode_parent.fluid_mode,
        fabric_mode=pick("fabric_mode"),
        distribution=pick("distribution"),
        reserved_fraction=pick("reserved_fraction"),
        demand_factor=pick("demand_factor"),
        limit_factor=pick("limit_factor"),
        pattern=pick("pattern"),
        periods=pick("periods"),
        faults=a.faults[:cut_a] + b.faults[cut_b:],
        policy_version=pick("policy_version"),
    ))
