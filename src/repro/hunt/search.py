"""The budgeted anomaly-search loop (Collie-style, fully seeded).

A campaign spends a fixed *budget* of candidate runs.  Candidates are
drawn two ways: uniform random samples of the scenario space, and —
once something has been found — mutation/crossover of the *frontier*
(specs that already violated an oracle), biasing the search toward the
neighborhood where the space misbehaves.  Every candidate executes
through :mod:`repro.cluster.runner` cells (parallel fan-out, on-disk
result cache), and every distinct violation *kind* becomes one
:class:`Finding`, delta-debugged to a minimal spec after the search
phase.

Everything is derived from the campaign seed: candidate generation
uses one named RNG stream, per-candidate simulation seeds come from
:func:`~repro.common.rng.derive_seed`, and the report carries no
wall-clock — so the same ``(seed, budget)`` yields a byte-identical
campaign report JSON on any machine and any worker count.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Callable, Dict, List, Optional

from repro.common.rng import derive_seed, make_rng
from repro.cluster.runner import Cell, run_cells
from repro.hunt import scenario as _scenario  # noqa: F401 - registers cells
from repro.hunt.minimize import minimize_spec
from repro.hunt.oracles import kind_to_oracle
from repro.hunt.scenario import run_spec
from repro.hunt.space import ScenarioSpec, crossover, mutate, random_spec

CAMPAIGN_SCHEMA_VERSION = 1


@dataclasses.dataclass
class HuntConfig:
    """One campaign's knobs (all echoed into the report)."""

    budget: int = 40          # candidate runs in the search phase
    seed: int = 0             # campaign master seed
    batch: int = 8            # candidates per runner fan-out
    mutation_bias: float = 0.6  # P(candidate mutates the frontier)
    minimize: bool = True     # delta-debug findings after the search
    max_minimize_steps: int = 200  # probe budget per finding
    workers: int = 1          # runner worker processes
    cache_dir: Optional[str] = None  # runner result cache

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload.pop("cache_dir")  # host path: not part of the verdict
        payload.pop("workers")    # any count yields identical results
        return payload


@dataclasses.dataclass
class Finding:
    """One distinct violation kind the campaign surfaced."""

    kind: str
    oracle: Optional[str]     # owning registry entry (ORACLES name)
    seed: int                 # simulation seed of the finding run
    found_at: int             # candidate index that first showed it
    spec: ScenarioSpec        # the config as found
    violation: dict           # first Violation record of this kind
    sightings: int = 1        # candidates that showed this kind
    minimized_spec: Optional[ScenarioSpec] = None
    minimize_steps: int = 0
    unminimizable: bool = False  # replay failed to reproduce (a red flag)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "oracle": self.oracle,
            "seed": self.seed,
            "found_at": self.found_at,
            "spec": self.spec.to_dict(),
            "violation": self.violation,
            "sightings": self.sightings,
            "minimized_spec": (None if self.minimized_spec is None
                               else self.minimized_spec.to_dict()),
            "minimize_steps": self.minimize_steps,
            "unminimizable": self.unminimizable,
        }


@dataclasses.dataclass
class Campaign:
    """A finished hunt: findings plus headline counters.

    Contains no timestamps or host state: ``to_json()`` is the
    determinism contract (same config, same bytes).
    """

    config: HuntConfig
    findings: List[Finding]
    counters: Dict[str, int]

    @property
    def ok(self) -> bool:
        """No finding failed to re-reproduce during minimization."""
        return not any(f.unminimizable for f in self.findings)

    def to_dict(self) -> dict:
        return {
            "schema_version": CAMPAIGN_SCHEMA_VERSION,
            "config": self.config.to_dict(),
            "findings": [f.to_dict()
                         for f in sorted(self.findings,
                                         key=lambda f: f.kind)],
            "counters": dict(sorted(self.counters.items())),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def install_metrics(self, registry) -> None:
        """Expose the campaign counters as telemetry gauges."""
        for name in sorted(self.counters):
            registry.gauge(f"hunt_{name}",
                           callback=lambda name=name: self.counters[name])


def candidate_seed(campaign_seed: int, index: int) -> int:
    """The simulation seed for candidate ``index`` (stable contract:
    reproducers record it, replay re-derives nothing)."""
    return derive_seed(campaign_seed, "hunt-candidate", index)


def _next_spec(rng, frontier: List[ScenarioSpec],
               mutation_bias: float) -> ScenarioSpec:
    """Draw one candidate: frontier neighborhood or fresh sample."""
    if frontier and rng.random() < mutation_bias:
        if len(frontier) >= 2 and rng.random() < 0.3:
            a, b = rng.sample(frontier, 2)
            return crossover(a, b, rng)
        return mutate(rng.choice(frontier), rng)
    return random_spec(rng)


def run_hunt(config: HuntConfig,
             log: Optional[Callable[[str], None]] = None) -> Campaign:
    """Execute one full campaign: search, then minimize each finding."""
    emit = log or (lambda _msg: None)
    rng = make_rng(config.seed, "hunt-generator")
    frontier: List[ScenarioSpec] = []
    findings: Dict[str, Finding] = {}
    counters = {
        "candidates": 0,
        "violating_candidates": 0,
        "findings": 0,
        "minimize_steps": 0,
        "unminimizable": 0,
    }

    index = 0
    while index < config.budget:
        batch = min(config.batch, config.budget - index)
        specs = [_next_spec(rng, frontier, config.mutation_bias)
                 for _ in range(batch)]
        cells = [
            Cell("hunt-candidate", {"spec": spec.to_dict()},
                 seed=candidate_seed(config.seed, index + i))
            for i, spec in enumerate(specs)
        ]
        report = run_cells(cells, workers=config.workers,
                           cache_dir=config.cache_dir)
        for i, (spec, result) in enumerate(zip(specs, report.results)):
            counters["candidates"] += 1
            if not result["kinds"]:
                continue
            counters["violating_candidates"] += 1
            frontier.append(spec)
            for kind in result["kinds"]:
                if kind in findings:
                    findings[kind].sightings += 1
                    continue
                violation = next(v for v in result["violations"]
                                 if v["kind"] == kind)
                findings[kind] = Finding(
                    kind=kind,
                    oracle=kind_to_oracle(kind),
                    seed=candidate_seed(config.seed, index + i),
                    found_at=index + i,
                    spec=spec,
                    violation=violation,
                )
                emit(f"candidate {index + i}: new finding {kind!r}")
        index += batch
        emit(f"searched {index}/{config.budget} candidates, "
             f"{len(findings)} finding kind(s)")

    counters["findings"] = len(findings)
    if config.minimize:
        for kind in sorted(findings):
            finding = findings[kind]
            result = minimize_spec(
                finding.spec,
                lambda s, k=kind, seed=finding.seed:
                    k in run_spec(s, seed)["kinds"],
                max_steps=config.max_minimize_steps,
            )
            finding.minimized_spec = result.spec
            finding.minimize_steps = result.steps
            finding.unminimizable = not result.reproduced
            if result.reproduced:
                # Refresh the violation record from the minimal spec so
                # the reproducer file describes what its own replay
                # shows, not the original (larger) sighting.
                confirm = run_spec(result.spec, finding.seed)
                finding.violation = next(
                    v for v in confirm["violations"] if v["kind"] == kind
                )
            counters["minimize_steps"] += result.steps
            emit(f"minimized {kind!r} in {result.steps} step(s)")
    counters["unminimizable"] = sum(
        1 for f in findings.values() if f.unminimizable
    )
    return Campaign(config=config, findings=list(findings.values()),
                    counters=counters)
