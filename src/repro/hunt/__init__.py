"""Automated anomaly hunting over the scenario space (docs/HUNT.md).

Collie-style search: sample and mutate points of a typed scenario
genome (:mod:`~repro.hunt.space`), execute each through the exact DES
(:mod:`~repro.hunt.scenario`) against the unified oracle registry
(:mod:`~repro.hunt.oracles`), delta-debug every finding to a minimal
reproducing config (:mod:`~repro.hunt.minimize`), and emit
self-contained JSON reproducers (:mod:`~repro.hunt.reproducer`) that
replay bit-identically — the keepers live under ``tests/regress/`` as
permanent regression scenarios.
"""

from repro.hunt.minimize import (
    MinimizeResult,
    ddmin,
    minimize_spec,
    shrink_float,
    shrink_int,
)
from repro.hunt.oracles import ORACLES, Oracle, kind_to_oracle
from repro.hunt.reproducer import (
    REPRO_SCHEMA_VERSION,
    ReplayResult,
    check_regression,
    load_reproducer,
    replay,
    replay_file,
    reproducer_dict,
    write_reproducer,
    write_reproducers,
)
from repro.hunt.scenario import HUNT_SCALE, run_spec, spec_workload
from repro.hunt.search import (
    CAMPAIGN_SCHEMA_VERSION,
    Campaign,
    Finding,
    HuntConfig,
    candidate_seed,
    run_hunt,
)
from repro.hunt.space import (
    SPEC_SCHEMA_VERSION,
    FaultGene,
    ScenarioSpec,
    clamp_spec,
    crossover,
    mutate,
    random_spec,
)

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "Campaign",
    "FaultGene",
    "Finding",
    "HUNT_SCALE",
    "HuntConfig",
    "MinimizeResult",
    "ORACLES",
    "Oracle",
    "REPRO_SCHEMA_VERSION",
    "ReplayResult",
    "SPEC_SCHEMA_VERSION",
    "ScenarioSpec",
    "candidate_seed",
    "check_regression",
    "clamp_spec",
    "crossover",
    "ddmin",
    "kind_to_oracle",
    "load_reproducer",
    "minimize_spec",
    "mutate",
    "random_spec",
    "replay",
    "replay_file",
    "reproducer_dict",
    "run_hunt",
    "run_spec",
    "shrink_float",
    "shrink_int",
    "spec_workload",
    "write_reproducer",
    "write_reproducers",
]
