"""The unified oracle registry: every end-of-run correctness check.

Before the hunt subsystem existed, each chaos harness carried its own
copy of the end-of-run invariant checks (``recovery/chaos.py`` and
``globalqos/chaos.py`` had near-identical no-lost-acked-PUT /
reservations-met / ledger blocks).  This module is the single home for
those checks: each is a pure function from run evidence to a list of
structured :class:`~repro.core.violations.Violation` records, and both
chaos harnesses and the anomaly search call the same code.  ``str()``
of a returned record reproduces the harnesses' historical message text
exactly (pinned by ``tests/hunt/test_chaos_pin.py``), so refactored
reports stay field-for-field identical.

The :data:`ORACLES` registry names every oracle the hunt evaluates,
with a one-line description each — the campaign report and
``docs/HUNT.md`` list violations by these names.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.violations import Violation

# Fraction of the reservation the settle-period completions must reach
# for "reservations eventually met" (both chaos harnesses' historical
# threshold).
SETTLE_ATTAINMENT = 0.9


# ---------------------------------------------------------------------------
# Safety oracles (shared by the chaos harnesses)
# ---------------------------------------------------------------------------
def check_no_lost_acked_put(
    entries: Iterable[Tuple[str, str, int, int]],
) -> List[Violation]:
    """No acknowledged PUT may be lost.

    ``entries`` are ``(subject, desc, acked_version, durable_version)``
    — ``desc`` is the caller's slot description (e.g. ``"C1 key=3"`` or
    ``"G1 node 2 key=7"``) so each harness keeps its exact message
    shape.
    """
    violations = []
    for subject, desc, acked, durable in entries:
        if durable < acked:
            violations.append(Violation(
                kind="lost-acked-put",
                message=(f"lost acked PUT: {desc} acked v{acked}, "
                         f"durable v{durable}"),
                subject=subject, observed=durable, expected=acked,
            ))
    return violations


def check_no_duplicate_apply(
    entries: Iterable[Tuple[str, str, int, int, int]],
) -> List[Violation]:
    """No store may apply the same (client, key, version) twice.

    ``entries`` are ``(store_label, client, key, version, count)``.
    """
    violations = []
    for label, client, key, version, count in entries:
        if count > 1:
            violations.append(Violation(
                kind="duplicate-apply",
                message=(f"duplicate apply on {label}: {client} key={key} "
                         f"v{version} applied {count}x"),
                subject=str(client), observed=count, expected=1,
            ))
    return violations


def check_reservations_met(
    rows: Iterable[Tuple[str, Optional[int], int]],
    threshold: float = SETTLE_ATTAINMENT,
) -> List[Violation]:
    """Settle-period completions reach ``threshold`` of the reservation.

    ``rows`` are ``(name, final_period_count, target)``; pass ``None``
    for the count to skip a client (no samples), and pre-filter clients
    with no reservation or an excused outage.
    """
    violations = []
    for name, count, target in rows:
        if count is None:
            continue
        if count < threshold * target:
            violations.append(Violation(
                kind="reservation-unmet",
                message=(f"reservation unmet after settle: {name} completed "
                         f"{count}/{target} in the final period"),
                subject=name, observed=count, expected=target,
            ))
    return violations


def check_bounded_failover(
    entries: Iterable[Tuple[str, float]],
    bound_periods: float,
    period: float,
) -> List[Violation]:
    """Every failover window closes within the configured bound.

    ``entries`` are ``(name, duration_seconds)``.
    """
    bound = bound_periods * period
    violations = []
    for name, duration in entries:
        if duration > bound:
            violations.append(Violation(
                kind="failover-unbounded",
                message=(f"failover exceeded bound: {name} took "
                         f"{duration / period:.2f} periods (bound "
                         f"{bound_periods})"),
                subject=name, observed=duration, expected=bound,
            ))
    return violations


def check_no_stale_split(
    entries: Iterable[Tuple[str, Sequence[Tuple[int, int]]]],
) -> List[Violation]:
    """Applied split updates are strictly newer than their predecessor.

    ``entries`` are ``(name, applied_keys)`` where ``applied_keys`` is
    the agent's ``(term, epoch)`` fencing keys in application order.  A
    non-increasing pair means a duplicate, a stale epoch, or a deposed
    leader's update was applied — the split-brain the fencing exists to
    prevent.
    """
    violations = []
    for name, keys in entries:
        prev = None
        for key in keys:
            if prev is not None and key <= prev:
                violations.append(Violation(
                    kind="stale-split-applied",
                    message=(f"stale split applied: {name} applied "
                             f"(term, epoch) {key} after {prev}"),
                    subject=name, observed=list(key), expected=list(prev),
                ))
            prev = key
    return violations


def check_no_stale_policy(
    entries: Iterable[Tuple[str, Sequence[Tuple[int, int, int]]]],
) -> List[Violation]:
    """Applied policy revisions are strictly newer than their predecessor.

    ``entries`` are ``(name, applied_keys)`` where ``applied_keys`` is
    the consumer's ``(term, epoch, version)`` keys in application
    order.  A non-increasing key — or a version that fails to advance
    even when the key does — means a duplicate push, a deposed
    leader's stale revision, or a rollback was applied mid-stream: the
    hot-swap bug the three-way fencing exists to prevent.
    """
    violations = []
    for name, keys in entries:
        prev = None
        for key in keys:
            if prev is not None and (key <= prev or key[2] <= prev[2]):
                violations.append(Violation(
                    kind="stale-policy-applied",
                    message=(f"stale policy applied: {name} applied "
                             f"(term, epoch, version) {key} after {prev}"),
                    subject=name, observed=list(key), expected=list(prev),
                ))
            prev = key
    return violations


def check_policy_audit(ledger) -> List[Violation]:
    """Policy applies are monotone and conserve tokens between revisions."""
    if ledger is None:
        return []
    return [
        Violation(kind="policy-audit",
                  message=f"policy ledger: {text}")
        for text in ledger.check_policy_audit()
    ]


def check_ledger_conservation(ledger) -> List[Violation]:
    """Per-account token conservation from the telemetry ledger."""
    if ledger is None:
        return []
    return [
        Violation(kind="ledger-conservation",
                  message=f"token ledger: {text}")
        for text in ledger.check_conservation()
    ]


def check_split_conservation(ledger) -> List[Violation]:
    """Rebalance splits sum to the aggregate reservation exactly."""
    if ledger is None:
        return []
    return [
        Violation(kind="split-conservation",
                  message=f"split ledger: {text}")
        for text in ledger.check_split_conservation()
    ]


def check_hierarchy_conservation(
    problems: Iterable[str],
) -> List[Violation]:
    """Nested reservations conserve: child sums fit the parent at every
    level, every epoch.

    ``problems`` are the audit strings from
    :meth:`~repro.tenancy.hierarchy.TenantHierarchy.conservation_violations`
    (structural: group sums vs tenant envelopes, tenant sums vs
    capacity) or :meth:`~repro.tenancy.binding.HierarchyBinding.
    rollup_conservation` (as-enforced: live monitor grants vs group
    ceilings); callers collect them per epoch and at run end.
    """
    return [
        Violation(kind="hierarchy-conservation",
                  message=f"hierarchy: {text}")
        for text in problems
    ]


def check_quarantine_audit(ledger) -> List[Violation]:
    """Quarantine enter/leave events pair up correctly in the ledger."""
    if ledger is None:
        return []
    return [
        Violation(kind="quarantine-audit",
                  message=f"quarantine ledger: {text}")
        for text in ledger.check_quarantine_audit()
    ]


# ---------------------------------------------------------------------------
# Liveness oracles (new with the hunt)
# ---------------------------------------------------------------------------
def check_progress(
    rows: Iterable[Tuple[str, Sequence[int], float]],
    stall_periods: int = 2,
) -> List[Violation]:
    """A client with standing demand keeps completing work.

    ``rows`` are ``(name, period_counts, demand_ops)``; a client whose
    demand is positive but whose last ``stall_periods`` periods all
    completed zero ops has stalled.  Callers exclude clients that are
    legitimately dark (inside a crash window at run end).
    """
    violations = []
    for name, counts, demand in rows:
        if demand <= 0 or len(counts) < stall_periods:
            continue
        tail = list(counts[-stall_periods:])
        if all(c == 0 for c in tail):
            violations.append(Violation(
                kind="progress-stall",
                message=(f"progress stall: {name} completed 0 ops over the "
                         f"final {stall_periods} periods despite demand "
                         f"{demand:.0f} ops/s"),
                subject=name, observed=0, expected=demand,
            ))
    return violations


def check_queue_growth(
    rows: Iterable[Tuple[str, int, int]],
) -> List[Violation]:
    """Engine submit queues stay bounded.

    ``rows`` are ``(name, queue_depth_at_end, bound)``; a queue still
    deeper than its bound after the settle tail is growing without
    limit (tokens never arrive, or arrive slower than demand forever).
    """
    violations = []
    for name, depth, bound in rows:
        if depth > bound:
            violations.append(Violation(
                kind="queue-growth",
                message=(f"unbounded queue growth: {name} still has "
                         f"{depth} queued submissions after settle "
                         f"(bound {bound})"),
                subject=name, observed=depth, expected=bound,
            ))
    return violations


def checker_violations(checker) -> List[Violation]:
    """Adopt an :class:`~repro.core.invariants.InvariantChecker`'s
    per-tick findings into an oracle result list."""
    return list(checker.violations)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Oracle:
    """One named correctness property the hunt evaluates."""

    name: str
    kinds: Tuple[str, ...]
    description: str
    check: Callable


ORACLES: Dict[str, Oracle] = {}


def _register(name: str, kinds: Tuple[str, ...], description: str,
              check: Callable) -> None:
    ORACLES[name] = Oracle(name, kinds, description, check)


_register(
    "invariant-checker", ("tokens-negative", "reservation-clamp",
                          "inflight-negative", "limit-exceeded",
                          "pool-over-capacity", "pool-runaway",
                          "tokens-overbooked"),
    "per-tick safety properties from core.invariants.InvariantChecker",
    checker_violations,
)
_register(
    "no-lost-acked-put", ("lost-acked-put",),
    "every acknowledged PUT is durable on at least one store",
    check_no_lost_acked_put,
)
_register(
    "no-duplicate-apply", ("duplicate-apply",),
    "no store applies the same (client, key, version) twice",
    check_no_duplicate_apply,
)
_register(
    "reservations-met", ("reservation-unmet",),
    "settle-period completions reach 90% of the granted reservation",
    check_reservations_met,
)
_register(
    "bounded-failover", ("failover-unbounded",),
    "every failover completes within the configured period bound",
    check_bounded_failover,
)
_register(
    "no-stale-split", ("stale-split-applied",),
    "agents apply split updates in strictly increasing (term, epoch) "
    "order (epoch fencing holds)",
    check_no_stale_split,
)
_register(
    "no-stale-policy", ("stale-policy-applied",),
    "consumers apply policy revisions in strictly increasing "
    "(term, epoch, version) order (hot-swap fencing holds)",
    check_no_stale_policy,
)
_register(
    "policy-audit", ("policy-audit",),
    "policy_apply ledger events are revision-monotone and conserve "
    "the aggregate between revisions",
    check_policy_audit,
)
_register(
    "ledger-conservation", ("ledger-conservation",),
    "per-account token conservation balances exactly",
    check_ledger_conservation,
)
_register(
    "split-conservation", ("split-conservation",),
    "rebalance splits sum to the aggregate reservation exactly",
    check_split_conservation,
)
_register(
    "quarantine-audit", ("quarantine-audit",),
    "quarantine and un-quarantine ledger events pair up correctly",
    check_quarantine_audit,
)
_register(
    "hierarchy-conservation", ("hierarchy-conservation",),
    "child reservations sum within their parent at every level, every "
    "epoch (tenant hierarchy nesting invariant)",
    check_hierarchy_conservation,
)
_register(
    "progress", ("progress-stall",),
    "clients with standing demand keep completing work",
    check_progress,
)
_register(
    "queue-bounded", ("queue-growth",),
    "engine submit queues drain once faults clear",
    check_queue_growth,
)


def kind_to_oracle(kind: str) -> Optional[str]:
    """The registry name owning a violation ``kind`` (None if unknown)."""
    for oracle in ORACLES.values():
        if kind in oracle.kinds:
            return oracle.name
    return None
