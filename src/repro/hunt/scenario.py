"""Execute one scenario-space candidate and evaluate every oracle.

``run_spec`` is the hunt's measurement kernel: build the cluster a
:class:`~repro.hunt.space.ScenarioSpec` describes, attach the per-tick
:class:`~repro.core.invariants.InvariantChecker` and a ledger-only
telemetry hub, install the compiled fault plan, run the exact DES, and
return a JSON-serializable verdict — structured violations from the
full oracle registry plus headline counters.  Same (spec, seed) in,
same verdict out, bit for bit: the search loop, the minimizer, and
``hunt replay`` all trust this.

The module registers itself with :mod:`repro.cluster.runner` as the
``"hunt-candidate"`` scenario, so search batches fan out through the
same parallel cell runner (and result cache) the evaluation suite uses.
"""

from __future__ import annotations

from typing import List, Mapping

from repro.core.invariants import InvariantChecker
from repro.core.violations import Violation
from repro.cluster.runner import register_scenario
from repro.cluster.scale import SimScale
from repro.cluster.scenarios import paper_demands, qos_cluster, reservation_set
from repro.hunt.oracles import (
    check_ledger_conservation,
    check_progress,
    check_queue_growth,
    check_reservations_met,
)
from repro.hunt.space import (
    CAPACITY_OPS,
    PER_CLIENT_RESERVATION_CAP,
    ScenarioSpec,
)
from repro.telemetry import TelemetryConfig, attach_telemetry
from repro.workloads.patterns import RequestPattern
from repro.workloads.reservations import zipf_group_distribution

# Same dilation as the chaos harnesses: 1 ms periods, 20 us ticks —
# fast enough that a search budget of hundreds is cheap.
HUNT_SCALE = SimScale(factor=1000, interval_divisor=50)

_PATTERNS = {
    "burst": RequestPattern.BURST,
    "constant-rate": RequestPattern.CONSTANT_RATE,
}


def spec_workload(spec: ScenarioSpec):
    """The (reservations, demands, limits) a spec resolves to, in ops/s.

    Demand follows Experiment 2A's rule (reservation plus an even pool
    share), scaled by the spec's ``demand_factor``; limits are a
    multiple of each reservation so they can never contradict it.
    """
    total = spec.total_reserved_ops()
    if spec.distribution == "zipf":
        # One group per client: the paper's 5-group shape requires the
        # client count to divide evenly, which the search space doesn't.
        base = zipf_group_distribution(total, spec.num_clients,
                                       num_groups=spec.num_clients)
    else:
        base = reservation_set(spec.distribution, total, spec.num_clients)
    # Elementwise cap keeps skewed distributions inside the admission
    # controller's local (single-client) capacity limit.
    reservations = [min(r, int(PER_CLIENT_RESERVATION_CAP)) for r in base]
    pool_share = (CAPACITY_OPS - sum(reservations)) / spec.num_clients
    demands = [
        d * spec.demand_factor
        for d in paper_demands(reservations, pool_share)
    ]
    limits = None
    if spec.limit_factor is not None:
        limits = [spec.limit_factor * r for r in reservations]
    return reservations, demands, limits


def run_spec(spec: ScenarioSpec, seed: int) -> dict:
    """Run one candidate; return its oracle verdict and counters."""
    reservations, demands, limits = spec_workload(spec)
    cluster = qos_cluster(
        reservations=reservations,
        demands=demands,
        pattern=_PATTERNS[spec.pattern],
        scale=HUNT_SCALE,
        limits_ops=limits,
        master_seed=seed,
    )
    config = cluster.config
    checker = InvariantChecker(cluster)
    hub = attach_telemetry(
        cluster, TelemetryConfig(sample_every=0, control_spans=False)
    )
    plan = spec.compile_plan(config)
    if not plan.empty:
        cluster.inject_faults(plan, seed=seed)

    cluster.start()
    T = config.period
    cluster.sim.run(until=spec.periods * T + T * 1e-6)
    for ctx in cluster.clients:
        if ctx.engine is not None:
            ctx.engine.ledger_flush()

    violations = _evaluate_oracles(cluster, spec, checker, hub, demands)
    injector = cluster.fault_injector
    return {
        "violations": [v.to_dict() for v in violations],
        "kinds": sorted({v.kind for v in violations}),
        "counters": {
            "checks_run": checker.checks_run,
            "completions_total": sum(
                m.completed.total for m in cluster.metrics.clients.values()
            ),
            "faults_dropped": (
                sum(injector.dropped.values()) if injector else 0
            ),
            "faults_delayed": (
                sum(injector.delayed.values()) if injector else 0
            ),
            "qps_closed": injector.qps_closed if injector else 0,
        },
    }


def _evaluate_oracles(cluster, spec: ScenarioSpec, checker, hub,
                      demands) -> List[Violation]:
    """The full oracle registry over one finished run."""
    violations: List[Violation] = list(checker.violations)
    violations.extend(check_ledger_conservation(hub.ledger))

    dark = set(spec.dark_at_end())
    reservation_rows = []
    progress_rows = []
    queue_rows = []
    for i, ctx in enumerate(cluster.clients):
        if ctx.name in dark or ctx.engine is None:
            continue
        counts = cluster.metrics.clients[ctx.name].period_counts
        granted = ctx.engine.tokens.reservation
        if counts and granted > 0:
            reservation_rows.append((ctx.name, counts[-1], granted))
        progress_rows.append((ctx.name, counts, demands[i]))
        # Over-demand necessarily backlogs the excess of demand over
        # what the system can actually deliver to this client: the
        # promised rate (reservation + pool share = demand /
        # demand_factor), capped by the single-client local capacity
        # C_L and by the client's own limit L_i.  Anomalous growth is
        # a queue beyond that expected backlog plus slack.
        demand_tokens = cluster.config.tokens_per_period(demands[i])
        deliverable = cluster.config.tokens_per_period(
            demands[i] / spec.demand_factor
        )
        if cluster.admission is not None:
            deliverable = min(deliverable, cluster.admission.local_capacity)
        if ctx.engine.limit is not None:
            deliverable = min(deliverable, ctx.engine.limit)
        # Two periods of full demand as slack absorbs ramp-up and
        # in-flight accounting transients.
        bound = int(
            spec.periods * max(0, demand_tokens - deliverable)
            + 2 * demand_tokens
        )
        queue_rows.append((ctx.name, ctx.engine.queue_depth, bound))

    violations.extend(check_reservations_met(reservation_rows))
    violations.extend(check_progress(progress_rows))
    violations.extend(check_queue_growth(queue_rows))
    return violations


@register_scenario("hunt-candidate")
def _hunt_candidate(params: Mapping, seed: int) -> dict:
    """Runner cell: ``params = {"spec": ScenarioSpec.to_dict()}``."""
    return run_spec(ScenarioSpec.from_dict(dict(params["spec"])), seed)
