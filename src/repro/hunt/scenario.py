"""Execute one scenario-space candidate and evaluate every oracle.

``run_spec`` is the hunt's measurement kernel: build the cluster a
:class:`~repro.hunt.space.ScenarioSpec` describes, attach the per-tick
:class:`~repro.core.invariants.InvariantChecker` and a ledger-only
telemetry hub, install the compiled fault plan, run the exact DES, and
return a JSON-serializable verdict — structured violations from the
full oracle registry plus headline counters.  Same (spec, seed) in,
same verdict out, bit for bit: the search loop, the minimizer, and
``hunt replay`` all trust this.

The module registers itself with :mod:`repro.cluster.runner` as the
``"hunt-candidate"`` scenario, so search batches fan out through the
same parallel cell runner (and result cache) the evaluation suite uses.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.common.errors import QoSError
from repro.core.invariants import InvariantChecker
from repro.core.violations import Violation
from repro.cluster.runner import register_scenario
from repro.cluster.scale import SimScale
from repro.cluster.scenarios import paper_demands, qos_cluster, reservation_set
from repro.hunt.oracles import (
    check_hierarchy_conservation,
    check_ledger_conservation,
    check_no_stale_policy,
    check_policy_audit,
    check_progress,
    check_queue_growth,
    check_reservations_met,
)
from repro.hunt.space import (
    CAPACITY_OPS,
    FLUID_GROUPS_PER_TENANT,
    PER_CLIENT_RESERVATION_CAP,
    ScenarioSpec,
)
from repro.telemetry import TelemetryConfig, attach_telemetry
from repro.workloads.patterns import RequestPattern
from repro.workloads.reservations import zipf_group_distribution

# Same dilation as the chaos harnesses: 1 ms periods, 20 us ticks —
# fast enough that a search budget of hundreds is cheap.
HUNT_SCALE = SimScale(factor=1000, interval_divisor=50)

_PATTERNS = {
    "burst": RequestPattern.BURST,
    "constant-rate": RequestPattern.CONSTANT_RATE,
}


def spec_workload(spec: ScenarioSpec):
    """The (reservations, demands, limits) a spec resolves to, in ops/s.

    Demand follows Experiment 2A's rule (reservation plus an even pool
    share), scaled by the spec's ``demand_factor``; limits are a
    multiple of each reservation so they can never contradict it.
    """
    total = spec.total_reserved_ops()
    if spec.distribution == "zipf":
        # One group per client: the paper's 5-group shape requires the
        # client count to divide evenly, which the search space doesn't.
        base = zipf_group_distribution(total, spec.num_clients,
                                       num_groups=spec.num_clients)
    else:
        base = reservation_set(spec.distribution, total, spec.num_clients)
    # Elementwise cap keeps skewed distributions inside the admission
    # controller's local (single-client) capacity limit.
    reservations = [min(r, int(PER_CLIENT_RESERVATION_CAP)) for r in base]
    pool_share = (CAPACITY_OPS - sum(reservations)) / spec.num_clients
    demands = [
        d * spec.demand_factor
        for d in paper_demands(reservations, pool_share)
    ]
    limits = None
    if spec.limit_factor is not None:
        limits = [spec.limit_factor * r for r in reservations]
    return reservations, demands, limits


def spec_hierarchy(spec: ScenarioSpec, config, reservations_ops):
    """A DES-mode hierarchy over the spec's *exact* reservations.

    Clients split into ``tenant_count`` contiguous chunks (contiguous
    so leaf order matches client-index order, which is what
    ``bind_hierarchy`` assumes); each client is its own leaf group, so
    binding the hierarchy changes nothing about the workload — it only
    adds the nesting envelopes the conservation oracle audits.
    """
    from repro.globalqos.waterfill import largest_remainder
    from repro.tenancy.hierarchy import (
        ClientGroup,
        Tenant,
        TenantHierarchy,
    )

    tokens = [config.tokens_per_period(r) for r in reservations_ops]
    sizes = largest_remainder(
        spec.num_clients, [1.0] * spec.tenant_count
    )
    tenants = []
    index = 0
    for t, size in enumerate(sizes):
        groups = [
            ClientGroup(name=f"c{index + k + 1}",
                        reservation=tokens[index + k], clients=1)
            for k in range(size)
        ]
        index += size
        tenants.append(Tenant(
            name=f"T{t + 1}",
            reservation=sum(g.reservation for g in groups),
            groups=groups,
        ))
    return TenantHierarchy(tenants)


def _schedule_policy_flips(cluster, spec: ScenarioSpec, reservations,
                           demands, hub) -> Dict[str, List[Tuple]]:
    """Arm the v4 policy gene: ``spec.policy_version`` synthesized
    revisions hot-swapped mid-run through the monitor's resize path.

    Revision ``k`` re-shapes the reservation mix — alternating
    0.8x / 1.2x by ``(client, k)`` parity, increases capped at each
    client's demand so the settle oracle keeps meaning — applied
    decrease-before-increase: shrinks at the flip tick, grows one
    check interval later, against the headroom the shrinks freed.
    Every apply lands in the ledger as a ``policy_apply`` event
    (arming the policy-audit oracle) and records its
    ``(term, flip, revision)`` key for the no-stale-policy oracle.
    Evicted clients (crash genes cost leases) are skipped, not
    errored: resizing a ghost is the monitor's call to refuse.
    """
    config = cluster.config
    T = config.period
    sim = cluster.sim
    monitor = cluster.monitor
    ledger = hub.ledger
    live = [ctx for ctx in cluster.clients if ctx.engine is not None]
    current = {
        ctx.index: config.tokens_per_period(reservations[ctx.index])
        for ctx in live
    }
    demand_tokens = {
        ctx.index: config.tokens_per_period(demands[ctx.index])
        for ctx in live
    }
    names = {ctx.index: ctx.name for ctx in live}
    keys: Dict[str, List[Tuple]] = {ctx.name: [] for ctx in live}

    def apply_one(index: int, version: int, target: int) -> None:
        try:
            granted = monitor.update_reservation(index, target)["reservation"]
        except QoSError:
            return
        previous = current[index]
        current[index] = granted
        ledger.policy_apply(
            version, names[index], version, [previous], [granted],
            sim.now, term=1, policy="hunt-synth", source="hunt",
        )
        keys[names[index]].append((1, version, version))

    def flip(version: int) -> None:
        shrinks, grows = [], []
        for index, tokens in sorted(current.items()):
            if (index + version) % 2 == 0:
                target = int(tokens * 0.8)
            else:
                target = min(int(tokens * 1.2), demand_tokens[index])
            (shrinks if target <= tokens else grows).append((index, target))
        for index, target in shrinks:
            apply_one(index, version, target)
        for index, target in grows:
            sim.schedule_at(sim.now + config.check_interval,
                            apply_one, index, version, target)

    # Flips spread over (1, fault_end) periods: the last revision still
    # has the full settle tail to become the reservation the
    # reservations-met oracle measures against.
    span = spec.fault_end_period() - 1.0
    for version in range(1, spec.policy_version + 1):
        sim.schedule_at(
            (1.0 + version * span / (spec.policy_version + 1)) * T,
            flip, version,
        )
    return keys


def run_spec(spec: ScenarioSpec, seed: int) -> dict:
    """Run one candidate; return its oracle verdict and counters."""
    if spec.fluid_mode:
        return _run_fluid_spec(spec, seed)
    reservations, demands, limits = spec_workload(spec)
    build_kwargs = {}
    if spec.fabric_mode:
        # v3 fabric gene: run the candidate on the congestion-controlled
        # datapath so oracle violations can surface from PCIe posting,
        # SQ backpressure, DCQCN pacing, and PFC interactions.
        from repro.rdma.cc import FabricModel

        build_kwargs["fabric_model"] = FabricModel.chameleon()
    cluster = qos_cluster(
        reservations=reservations,
        demands=demands,
        pattern=_PATTERNS[spec.pattern],
        scale=HUNT_SCALE,
        limits_ops=limits,
        master_seed=seed,
        **build_kwargs,
    )
    config = cluster.config
    if spec.tenant_count > 0:
        from repro.tenancy.binding import bind_hierarchy

        bind_hierarchy(cluster, spec_hierarchy(spec, config, reservations))
    checker = InvariantChecker(cluster)
    hub = attach_telemetry(
        cluster, TelemetryConfig(sample_every=0, control_spans=False)
    )
    plan = spec.compile_plan(config)
    if not plan.empty:
        cluster.inject_faults(plan, seed=seed)
    policy_keys: Dict[str, List[Tuple]] = {}
    if spec.policy_version > 0:
        policy_keys = _schedule_policy_flips(
            cluster, spec, reservations, demands, hub
        )

    cluster.start()
    T = config.period
    cluster.sim.run(until=spec.periods * T + T * 1e-6)
    for ctx in cluster.clients:
        if ctx.engine is not None:
            ctx.engine.ledger_flush()

    violations = _evaluate_oracles(cluster, spec, checker, hub, demands,
                                   policy_keys)
    injector = cluster.fault_injector
    return {
        "violations": [v.to_dict() for v in violations],
        "kinds": sorted({v.kind for v in violations}),
        "counters": {
            "checks_run": checker.checks_run,
            "completions_total": sum(
                m.completed.total for m in cluster.metrics.clients.values()
            ),
            "faults_dropped": (
                sum(injector.dropped.values()) if injector else 0
            ),
            "faults_delayed": (
                sum(injector.delayed.values()) if injector else 0
            ),
            "qps_closed": injector.qps_closed if injector else 0,
        },
    }


def _evaluate_oracles(cluster, spec: ScenarioSpec, checker, hub,
                      demands, policy_keys=None) -> List[Violation]:
    """The full oracle registry over one finished run."""
    violations: List[Violation] = list(checker.violations)
    violations.extend(check_ledger_conservation(hub.ledger))
    if spec.policy_version > 0:
        violations.extend(check_policy_audit(hub.ledger))
        violations.extend(check_no_stale_policy(
            sorted((policy_keys or {}).items())
        ))
    binding = getattr(cluster, "tenancy", None)
    if binding is not None:
        violations.extend(check_hierarchy_conservation(
            binding.rollup_conservation()
        ))

    dark = set(spec.dark_at_end())
    reservation_rows = []
    progress_rows = []
    queue_rows = []
    for i, ctx in enumerate(cluster.clients):
        if ctx.name in dark or ctx.engine is None:
            continue
        counts = cluster.metrics.clients[ctx.name].period_counts
        granted = ctx.engine.tokens.reservation
        if counts and granted > 0:
            reservation_rows.append((ctx.name, counts[-1], granted))
        progress_rows.append((ctx.name, counts, demands[i]))
        # Over-demand necessarily backlogs the excess of demand over
        # what the system can actually deliver to this client: the
        # promised rate (reservation + pool share = demand /
        # demand_factor), capped by the single-client local capacity
        # C_L and by the client's own limit L_i.  Anomalous growth is
        # a queue beyond that expected backlog plus slack.
        demand_tokens = cluster.config.tokens_per_period(demands[i])
        deliverable = cluster.config.tokens_per_period(
            demands[i] / spec.demand_factor
        )
        if cluster.admission is not None:
            deliverable = min(deliverable, cluster.admission.local_capacity)
        if ctx.engine.limit is not None:
            deliverable = min(deliverable, ctx.engine.limit)
        # Two periods of full demand as slack absorbs ramp-up and
        # in-flight accounting transients.
        bound = int(
            spec.periods * max(0, demand_tokens - deliverable)
            + 2 * demand_tokens
        )
        if spec.policy_version > 0:
            # The policy gene legitimately withholds delivery from
            # shrunk clients: revisions compound to at most a ~25%
            # reservation cut (0.8x shrinks, 1.2x demand-capped grows,
            # alternating over <= MAX_POLICY_VERSION flips), and that
            # shortfall is expected backlog, not anomalous growth.
            bound += int(0.25 * deliverable * spec.periods)
        queue_rows.append((ctx.name, ctx.engine.queue_depth, bound))

    violations.extend(check_reservations_met(reservation_rows))
    violations.extend(check_progress(progress_rows))
    violations.extend(check_queue_growth(queue_rows))
    return violations


def _run_fluid_spec(spec: ScenarioSpec, seed: int) -> dict:
    """Fluid-mode candidate: the aggregated flow engine under the
    spec's fault genome.

    The hierarchy shape is seeded from ``(spec, seed)`` via the scale
    scenario's generator; the spec's ``demand_factor`` scales every
    class demand and its fault genes compile onto fluid rates (victims
    are flow classes — see :meth:`ScenarioSpec.victim`).  Control-plane
    drop/delay genes have no fluid analogue (the engine has no per-op
    control messages) and are inert here by design.
    """
    from repro.core.capacity import (
        AdaptiveCapacityEstimator,
        ProfiledCapacity,
    )
    from repro.fluid.engine import FluidEngine
    from repro.fluid.flows import flows_from_hierarchy
    from repro.fluid.scenario import PROFILE_RSD, build_scale_hierarchy
    from repro.rdma.nic import NICProfile
    from repro.telemetry.ledger import TokenLedger

    config = HUNT_SCALE.config()
    rate = NICProfile.chameleon().onesided_saturation_rate()
    capacity_tokens = config.tokens_per_period(rate)
    hierarchy, demand_map = build_scale_hierarchy(
        spec.num_clients,
        tenants=spec.tenant_count,
        groups_per_tenant=FLUID_GROUPS_PER_TENANT,
        config=config,
        capacity_tokens=capacity_tokens,
        seed=seed,
        reserved_fraction=spec.reserved_fraction,
    )
    flows = flows_from_hierarchy(
        hierarchy,
        demand_of=lambda t, g: int(round(
            demand_map[f"{t.name}/{g.name}"] * spec.demand_factor
        )),
    )
    estimator = AdaptiveCapacityEstimator(
        profiled=ProfiledCapacity(
            mean=float(capacity_tokens),
            stddev=PROFILE_RSD * capacity_tokens,
        ),
        eta=config.eta,
        history_window=config.history_window,
        saturation_tolerance=config.saturation_tolerance,
    )
    ledger = TokenLedger()
    engine = FluidEngine(
        flows, config, estimator,
        physical_capacity=capacity_tokens,
        plan=spec.compile_plan(config),
        ledger=ledger,
    )
    engine.run(spec.periods)

    violations: List[Violation] = []
    violations.extend(check_ledger_conservation(ledger))
    violations.extend(check_hierarchy_conservation(
        hierarchy.conservation_violations()
    ))
    dark = set(spec.dark_at_end())
    reservation_rows = []
    progress_rows = []
    for flow in engine.flows:
        if flow.name in dark:
            continue
        counts = engine.flow_completions[flow.name]
        # A flow can never complete more than it demands, so the
        # settle target is the reservation capped by demand.
        target = min(flow.reservation, flow.demand)
        if counts and target > 0:
            reservation_rows.append((flow.name, counts[-1], target))
        progress_rows.append((flow.name, counts, float(flow.demand)))
    violations.extend(check_reservations_met(reservation_rows))
    violations.extend(check_progress(progress_rows))

    return {
        "violations": [v.to_dict() for v in violations],
        "kinds": sorted({v.kind for v in violations}),
        "counters": {
            "checks_run": 0,
            "completions_total": sum(
                sum(counts)
                for counts in engine.flow_completions.values()
            ),
            "faults_dropped": 0,
            "faults_delayed": 0,
            "qps_closed": 0,
            "fluid_flows": len(engine.flows),
            "fluid_clients": engine.total_clients,
            "fluid_conversions": engine.conversions,
        },
    }


@register_scenario("hunt-candidate")
def _hunt_candidate(params: Mapping, seed: int) -> dict:
    """Runner cell: ``params = {"spec": ScenarioSpec.to_dict()}``."""
    return run_spec(ScenarioSpec.from_dict(dict(params["spec"])), seed)
