"""Delta-debugging: shrink a finding to its smallest reproducing spec.

Three generic reducers and one driver:

- :func:`ddmin` — Zeller's classic 1-minimal subset reduction over a
  list (here: the fault-gene genome).  Works for non-monotone
  predicates too; the result is 1-minimal (no single element can be
  removed), not globally minimal.
- :func:`shrink_int` / :func:`shrink_float` — boundary bisection of a
  scalar toward its floor, assuming the usual monotone shape (simpler
  values stop reproducing at some threshold).  If the floor itself
  still reproduces, the floor wins immediately — which also covers
  non-monotone predicates gracefully.
- :func:`minimize_spec` — the driver: ddmin the fault list, floor the
  choice genes, bisect every scalar gene (spec-level and per remaining
  fault gene), all through :func:`~repro.hunt.space.clamp_spec` so
  every probe is a valid point of the space.

The predicate is "this spec still reproduces the finding" — one full
DES run per probe — so probes are cached by canonical spec JSON and
the driver reports how many real evaluations minimization cost.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence, Tuple

from repro.hunt.space import (
    CHOICE_GENES,
    FLOAT_GENES,
    INT_GENES,
    FaultGene,
    ScenarioSpec,
    clamp_spec,
)

# Scalar floors for the per-fault-gene shrink pass.
GENE_FLOAT_FLOORS = {"duration": 0.25, "rate": 0.01, "start": 0.5}

# Stop bisecting a float once the bracket is this tight (the space
# rounds genes to 4 decimals anyway).
FLOAT_TOLERANCE = 0.05


def ddmin(items: Sequence, test: Callable[[list], bool]) -> list:
    """Zeller's ddmin: a 1-minimal sublist still satisfying ``test``.

    ``test(list(items))`` must be true on entry; the result is a
    sublist (order preserved) from which no single element can be
    dropped without losing the property.
    """
    items = list(items)
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        subsets = [items[i:i + chunk] for i in range(0, len(items), chunk)]
        reduced = False
        for i, subset in enumerate(subsets):
            complement = [x for j, s in enumerate(subsets) if j != i
                          for x in s]
            if test(complement):
                items = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(items):
                break
            granularity = min(granularity * 2, len(items))
    if len(items) == 1 and test([]):
        return []
    return items


def shrink_int(value: int, floor: int,
               test: Callable[[int], bool]) -> int:
    """Smallest ``v`` in [floor, value] with ``test(v)``, by bisection.

    ``test(value)`` must be true on entry.  Tries the floor first, then
    bisects the failing/passing boundary.
    """
    if value <= floor:
        return value
    if test(floor):
        return floor
    lo, hi = floor, value  # test(lo) false, test(hi) true
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if test(mid):
            hi = mid
        else:
            lo = mid
    return hi


def shrink_float(value: float, floor: float, test: Callable[[float], bool],
                 tolerance: float = FLOAT_TOLERANCE) -> float:
    """Float analogue of :func:`shrink_int` with a bracket tolerance."""
    if value <= floor:
        return value
    probe = round(floor, 4)
    if test(probe):
        return probe
    lo, hi = floor, value
    while hi - lo > tolerance:
        mid = round((lo + hi) / 2, 4)
        if test(mid):
            hi = mid
        else:
            lo = mid
    return round(hi, 4)


@dataclasses.dataclass
class MinimizeResult:
    """Outcome of one minimization."""

    spec: ScenarioSpec
    steps: int          # real predicate evaluations (cache misses)
    reproduced: bool    # the input spec itself satisfied the predicate


def minimize_spec(
    spec: ScenarioSpec,
    predicate: Callable[[ScenarioSpec], bool],
    max_steps: int = 200,
) -> MinimizeResult:
    """Shrink ``spec`` while ``predicate`` (finding still reproduces)
    holds.  Every probe is clamped into the valid space and cached, so
    the DES only runs once per distinct candidate; ``max_steps`` bounds
    the total number of runs."""
    cache = {}
    steps = 0

    def probe(candidate: ScenarioSpec) -> bool:
        nonlocal steps
        key = candidate.to_json()
        if key not in cache:
            if steps >= max_steps:
                return False  # budget exhausted: treat as non-reproducing
            steps += 1
            cache[key] = bool(predicate(candidate))
        return cache[key]

    current = clamp_spec(spec)
    if not probe(current):
        return MinimizeResult(spec=current, steps=steps, reproduced=False)

    def try_replace(**changes) -> bool:
        """Probe one simplification; adopt it if it still reproduces."""
        nonlocal current
        candidate = clamp_spec(dataclasses.replace(current, **changes))
        if candidate == current:
            return False
        if probe(candidate):
            current = candidate
            return True
        return False

    # 1. ddmin the fault-gene list.
    if current.faults:
        kept = ddmin(
            list(current.faults),
            lambda genes: probe(clamp_spec(
                dataclasses.replace(current, faults=tuple(genes))
            )),
        )
        current = clamp_spec(
            dataclasses.replace(current, faults=tuple(kept))
        )

    # 2. Floor the choice genes and drop the limit.
    for name, (_choices, floor) in sorted(CHOICE_GENES.items()):
        if getattr(current, name) != floor:
            try_replace(**{name: floor})
    if current.limit_factor is not None:
        try_replace(limit_factor=None)
    # The exact DES is the simpler execution mode: drop fluid if the
    # anomaly survives (clamp_spec then pulls the client count back
    # under the DES ceiling in the same step).
    if current.fluid_mode:
        try_replace(fluid_mode=False)

    # 3. Bisect the spec-level scalars toward their floors.
    for name, (_lo, _hi, floor) in sorted(INT_GENES.items()):
        value = shrink_int(
            getattr(current, name), floor,
            lambda v, name=name: probe(clamp_spec(
                dataclasses.replace(current, **{name: v})
            )),
        )
        try_replace(**{name: value})
    for name, (_lo, _hi, floor) in sorted(FLOAT_GENES.items()):
        value = shrink_float(
            getattr(current, name), floor,
            lambda v, name=name: probe(clamp_spec(
                dataclasses.replace(current, **{name: v})
            )),
        )
        try_replace(**{name: value})

    # 4. Simplify each surviving fault gene: un-permanent it, zero its
    # victim index, bisect its scalars.
    for idx in range(len(current.faults)):
        def gene_probe(**changes) -> bool:
            genes = list(current.faults)
            genes[idx] = dataclasses.replace(genes[idx], **changes)
            return probe(clamp_spec(
                dataclasses.replace(current, faults=tuple(genes))
            ))

        def gene_adopt(**changes) -> None:
            nonlocal current
            genes = list(current.faults)
            genes[idx] = dataclasses.replace(genes[idx], **changes)
            candidate = clamp_spec(
                dataclasses.replace(current, faults=tuple(genes))
            )
            if candidate != current and probe(candidate):
                current = candidate

        gene = current.faults[idx]
        if gene.permanent:
            gene_adopt(permanent=False)
        if gene.client != 0:
            gene_adopt(client=0)
        for field, floor in sorted(GENE_FLOAT_FLOORS.items()):
            gene = current.faults[idx]
            value = shrink_float(
                getattr(gene, field), floor,
                lambda v, field=field: gene_probe(**{field: v}),
            )
            gene_adopt(**{field: value})

    return MinimizeResult(spec=current, steps=steps, reproduced=True)
