"""Self-contained JSON reproducers for hunt findings.

A reproducer file carries everything needed to re-trigger one finding
bit-identically: the (minimized) scenario spec, the simulation seed,
the violation kind to expect, and provenance (which campaign found it,
at which candidate, and how many delta-debug steps the shrink took).
``hunt replay <file>`` re-runs the exact DES and checks the recorded
kind appears again; files committed under ``tests/regress/`` run as
permanent regression scenarios in the test suite.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

from repro.common.errors import ConfigError
from repro.hunt.scenario import run_spec
from repro.hunt.search import Campaign, Finding
from repro.hunt.space import ScenarioSpec

REPRO_SCHEMA_VERSION = 1


@dataclasses.dataclass
class ReplayResult:
    """Outcome of replaying one reproducer."""

    reproduced: bool      # the recorded kind showed up again
    kind: str             # what the file expects
    kinds: list           # what the replay actually produced
    result: dict          # the full run_spec verdict


def reproducer_dict(finding: Finding, campaign_seed: int) -> dict:
    """The serializable reproducer payload for one finding.

    Uses the minimized spec when minimization succeeded, the original
    otherwise, so the file always reproduces as written.
    """
    spec = finding.spec
    if finding.minimized_spec is not None and not finding.unminimizable:
        spec = finding.minimized_spec
    return {
        "schema_version": REPRO_SCHEMA_VERSION,
        "kind": finding.kind,
        "oracle": finding.oracle,
        "seed": finding.seed,
        "spec": spec.to_dict(),
        "violation": finding.violation,
        "provenance": {
            "campaign_seed": campaign_seed,
            "found_at": finding.found_at,
            "sightings": finding.sightings,
            "minimize_steps": finding.minimize_steps,
        },
    }


def write_reproducer(path, finding: Finding, campaign_seed: int) -> dict:
    """Write one finding's reproducer file; returns the payload."""
    payload = reproducer_dict(finding, campaign_seed)
    with open(path, "w") as fh:
        json.dump(payload, fh, sort_keys=True, indent=2)
        fh.write("\n")
    return payload


def write_reproducers(directory, campaign: Campaign) -> list:
    """One file per finding, named ``repro-<kind>.json``; returns paths."""
    paths = []
    for finding in sorted(campaign.findings, key=lambda f: f.kind):
        path = f"{directory}/repro-{finding.kind}.json"
        write_reproducer(path, finding, campaign.config.seed)
        paths.append(path)
    return paths


def load_reproducer(path) -> dict:
    """Read and validate a reproducer file."""
    with open(path) as fh:
        payload = json.load(fh)
    version = payload.get("schema_version")
    if version != REPRO_SCHEMA_VERSION:
        raise ConfigError(
            f"unsupported reproducer schema version {version!r} "
            f"(this build reads version {REPRO_SCHEMA_VERSION})"
        )
    for field in ("kind", "seed", "spec"):
        if field not in payload:
            raise ConfigError(f"reproducer {path} is missing {field!r}")
    return payload


def replay(payload: dict) -> ReplayResult:
    """Re-run a reproducer's exact scenario and check its finding."""
    spec = ScenarioSpec.from_dict(payload["spec"])
    result = run_spec(spec, payload["seed"])
    return ReplayResult(
        reproduced=payload["kind"] in result["kinds"],
        kind=payload["kind"],
        kinds=list(result["kinds"]),
        result=result,
    )


def replay_file(path) -> ReplayResult:
    """:func:`load_reproducer` + :func:`replay` in one step."""
    return replay(load_reproducer(path))


def check_regression(path) -> Optional[str]:
    """Test-suite helper: None if the file still reproduces, else a
    human-readable failure description."""
    payload = load_reproducer(path)
    outcome = replay(payload)
    if outcome.reproduced:
        return None
    return (f"{path}: recorded kind {outcome.kind!r} did not reproduce "
            f"(replay produced {outcome.kinds})")
