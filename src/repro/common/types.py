"""Typed identifiers and shared enums."""

from __future__ import annotations

import enum
from typing import NewType

# Node identifiers index hosts in a cluster; client identifiers index the
# QoS-managed clients (1-based in the paper: C1..C10, 0-based here).
NodeId = NewType("NodeId", int)
ClientId = NewType("ClientId", int)


class OpType(enum.Enum):
    """RDMA work-request opcodes supported by the simulated RNIC."""

    READ = "read"  # one-sided RDMA READ
    WRITE = "write"  # one-sided RDMA WRITE
    SEND = "send"  # two-sided SEND (matches a posted RECV)
    RECV = "recv"  # two-sided receive buffer post
    FETCH_ADD = "fetch_add"  # one-sided atomic fetch-and-add
    COMPARE_SWAP = "compare_swap"  # one-sided atomic compare-and-swap

    @property
    def one_sided(self) -> bool:
        """True when the op completes without the target CPU."""
        return self in _ONE_SIDED

    @property
    def atomic(self) -> bool:
        """True for the RNIC-linearized atomic opcodes."""
        return self in (OpType.FETCH_ADD, OpType.COMPARE_SWAP)


_ONE_SIDED = frozenset(
    {OpType.READ, OpType.WRITE, OpType.FETCH_ADD, OpType.COMPARE_SWAP}
)

# Dense member indexes so per-opcode hot-path tables can be plain lists
# (a dict keyed by the enum would pay the Python-level Enum.__hash__ on
# every lookup — measurably hot at millions of simulated ops per run).
for _index, _op in enumerate(OpType):
    _op.index = _index
del _index, _op


class AccessMode(enum.Enum):
    """How a storage client reaches the data node."""

    ONE_SIDED = "one_sided"
    TWO_SIDED = "two_sided"


class QoSMode(enum.Enum):
    """QoS deployment variants compared in the paper's evaluation."""

    BARE = "bare"  # no QoS support
    BASIC_HAECHI = "basic_haechi"  # Haechi without token conversion
    HAECHI = "haechi"  # full Haechi
