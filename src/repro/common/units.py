"""Unit helpers.

Internally every rate is ops/second and every time a float of seconds.
The paper reports throughput in KIOPS (thousands of I/Os per second);
these helpers keep the conversions explicit at API boundaries.
"""

from __future__ import annotations

KIOPS = 1_000.0  # ops/second per KIOPS

# Sizes used by the evaluation workload.
KB = 1024
IO_SIZE_BYTES = 4 * KB  # the paper's 4 KB read I/Os
CONTROL_SIZE_BYTES = 8  # 64-bit token/report words


def kiops(value: float) -> float:
    """Convert a KIOPS figure to ops/second."""
    return value * KIOPS


def to_kiops(ops_per_second: float) -> float:
    """Convert ops/second to KIOPS for reporting."""
    return ops_per_second / KIOPS


def per_second(count: float, duration: float) -> float:
    """A rate from a count over ``duration`` seconds."""
    if duration <= 0:
        raise ValueError(f"non-positive duration: {duration}")
    return count / duration


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3
