"""Deterministic random-number management.

Every stochastic component derives its own :class:`random.Random` stream
from a master seed plus a string path (e.g. ``("client", 3, "arrivals")``)
so that adding a component never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any


def derive_seed(master_seed: int, *path: Any) -> int:
    """A stable 64-bit seed derived from ``master_seed`` and a key path."""
    text = f"{master_seed}:" + "/".join(str(p) for p in path)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(master_seed: int, *path: Any) -> random.Random:
    """A private :class:`random.Random` for the component at ``path``."""
    return random.Random(derive_seed(master_seed, *path))
