"""Exception hierarchy for the Haechi reproduction."""


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class RDMAError(ReproError):
    """An RDMA verbs operation failed (bad rkey, bounds, QP state...)."""


class MemoryAccessError(RDMAError):
    """A one-sided access violated region bounds or permissions."""


class QPError(RDMAError):
    """A queue-pair state or capacity violation."""


class StoreError(ReproError):
    """Key-value store errors (unknown key, bad slot...)."""


class QoSError(ReproError):
    """Haechi protocol errors."""


class AdmissionError(QoSError):
    """A client was denied admission (capacity constraint violated)."""


class ProtocolError(QoSError):
    """A malformed or out-of-order QoS protocol interaction."""
