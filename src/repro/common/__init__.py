"""Cross-cutting utilities: typed identifiers, units, errors, seeded RNG."""

from repro.common.errors import (
    AdmissionError,
    ConfigError,
    ProtocolError,
    QoSError,
    RDMAError,
    ReproError,
    StoreError,
)
from repro.common.rng import derive_seed, make_rng
from repro.common.types import ClientId, NodeId, OpType
from repro.common.units import KIOPS, kiops, per_second, to_kiops

__all__ = [
    "AdmissionError",
    "ClientId",
    "ConfigError",
    "KIOPS",
    "NodeId",
    "OpType",
    "ProtocolError",
    "QoSError",
    "RDMAError",
    "ReproError",
    "StoreError",
    "derive_seed",
    "kiops",
    "make_rng",
    "per_second",
    "to_kiops",
]
