"""mClock-style tag-based scheduling on the two-sided path.

The second classic server-centric family from the paper's Sec. IV:
instead of per-period token buckets (bQueue/pShift style,
:mod:`~repro.baselines.server_qos`), mClock [Gulati et al., OSDI'10]
assigns each request three virtual-time tags —

- **R-tag** (reservation): spaced ``1/r_i`` apart; a request whose
  R-tag is due is served first, guaranteeing the minimum rate;
- **L-tag** (limit): spaced ``1/l_i`` apart; a client whose next L-tag
  lies in the future is ineligible, capping the maximum rate;
- **P-tag** (proportional): spaced ``1/w_i`` apart; among eligible
  clients past their reservation, the smallest P-tag wins, sharing the
  surplus by weight.

Tag update rule (the max with ``now`` forgets idle history, so a
returning client cannot burst from banked credit)::

    tag_i = max(now, tag_i + 1/rate_i)

This scheduler interposes on the data node exactly like
:class:`ServerQoSScheduler` — possible only because two-sided requests
pass through the server CPU, which is the paper's point.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.common.errors import QoSError
from repro.baselines.server_qos import ServerQoSScheduler


class _TaggedClient:
    """Per-client tag state and request FIFO."""

    __slots__ = ("reservation", "limit", "weight", "r_tag", "l_tag",
                 "p_tag", "queue", "served")

    def __init__(self, reservation: float, weight: float,
                 limit: Optional[float]):
        self.reservation = reservation  # ops/s (0 = none)
        self.limit = limit  # ops/s or None
        self.weight = weight
        self.r_tag = 0.0
        self.l_tag = 0.0
        self.p_tag = 0.0
        self.queue: Deque[Tuple[object, object]] = deque()
        self.served = 0


class MClockScheduler(ServerQoSScheduler):
    """Tag-based reservation/limit/weight scheduling at the data node.

    Reuses the request interposition and CPU dispatch plumbing of
    :class:`ServerQoSScheduler`, replacing its token accounting with
    mClock's tag algebra.  Clients are registered with
    :meth:`add_tagged_client` (rates in ops/second).
    """

    def __init__(self, data_node, period: float):
        super().__init__(data_node, period)
        self._tagged: Dict[str, _TaggedClient] = {}

    # -- registration ----------------------------------------------------
    def add_tagged_client(
        self,
        host_name: str,
        reservation_ops: float = 0.0,
        weight: float = 1.0,
        limit_ops: Optional[float] = None,
    ) -> None:
        """Register a client with mClock parameters (ops/second)."""
        if host_name in self._tagged:
            raise QoSError(f"client {host_name!r} already registered")
        if reservation_ops < 0:
            raise QoSError(f"reservation must be >= 0, got {reservation_ops}")
        if weight <= 0:
            raise QoSError(f"weight must be positive, got {weight}")
        if limit_ops is not None and limit_ops < reservation_ops:
            raise QoSError(
                f"limit {limit_ops} below reservation {reservation_ops}"
            )
        self._tagged[host_name] = _TaggedClient(
            reservation_ops, weight, limit_ops
        )

    def add_client(self, host_name: str, reservation_tokens: int) -> None:
        """Token-style registration is disabled on the tag scheduler."""
        raise QoSError("use add_tagged_client on MClockScheduler")

    def start(self) -> None:
        """Tag scheduling needs no period timer; mark started only."""
        if self._started:
            raise QoSError("scheduler already started")
        self._started = True
        self._dispatch()

    # -- request path -----------------------------------------------------
    def _enqueue(self, msg, reply_qp) -> None:
        name = reply_qp.dst.name
        state = self._tagged.get(name)
        if state is None:
            state = _TaggedClient(0.0, 1.0, None)  # best-effort by weight
            self._tagged[name] = state
        now = self.sim.now
        # Tag the request at arrival (mClock tags each request); the
        # per-client cursors advance by the tag spacing, and the request
        # carries its own copies — eligibility is judged by the *head*
        # request's tags, not the latest arrival's.
        if state.reservation > 0:
            state.r_tag = max(now, state.r_tag + 1.0 / state.reservation)
            r_tag = state.r_tag
        else:
            r_tag = math.inf
        if state.limit is not None:
            state.l_tag = max(now, state.l_tag + 1.0 / state.limit)
            l_tag = state.l_tag
        else:
            l_tag = 0.0
        state.p_tag = max(now, state.p_tag + 1.0 / state.weight)
        state.queue.append((msg, reply_qp, r_tag, l_tag, state.p_tag))
        self._dispatch()

    def _pick(self) -> Optional[str]:
        now = self.sim.now
        heads = [
            (name, state.queue[0])
            for name, state in self._tagged.items() if state.queue
        ]
        if not heads:
            return None
        # constraint phase: any due head R-tag wins (earliest first)
        due = [(head[2], name) for name, head in heads if head[2] <= now]
        if due:
            return min(due)[1]
        # weight phase: limit-eligible head with the smallest P-tag
        eligible = [
            (head[4], name) for name, head in heads if head[3] <= now
        ]
        if eligible:
            return min(eligible)[1]
        return None  # every head is limit-gated: idle deliberately

    def _dispatch(self) -> None:
        if self._dispatching or not self._started:
            return
        name = self._pick()
        if name is None:
            self._schedule_limit_wakeup()
            return
        state = self._tagged[name]
        msg, reply_qp, _r, _l, _p = state.queue.popleft()
        state.served += 1
        self.total_served += 1
        self._dispatching = True
        response, size = self._serve(msg)
        done = self.data_node.host.cpu.submit_rpc(size)
        self.sim.schedule_at(done, self._complete, response, size, reply_qp)

    def _schedule_limit_wakeup(self) -> None:
        """Every backlogged head is limit-gated: wake at the earliest
        head L-tag so throttled work resumes without a new arrival."""
        pending = [
            state.queue[0][3] for state in self._tagged.values()
            if state.queue
        ]
        if not pending:
            return
        wake_at = min(pending)
        if wake_at > self.sim.now:
            self.sim.schedule_at(wake_at, self._dispatch)
