"""Baseline QoS mechanisms the paper positions Haechi against.

The paper's core argument (Secs. I and IV): traditional *server-centric*
QoS — a scheduler at the data node ordering queued requests — works for
two-sided RDMA because the server CPU sees every request, but is
impossible for one-sided I/O, which the CPU never observes.
:class:`~repro.baselines.server_qos.ServerQoSScheduler` implements that
traditional scheduler (token-based reservations with work-conserving
best-effort service, in the style of bQueue/mClock) on the two-sided
RPC path, so benches can quantify the trade the paper describes:
server-side QoS at 427 KIOPS versus Haechi's QoS at 1570 KIOPS.
"""

from repro.baselines.mclock import MClockScheduler
from repro.baselines.server_qos import ServerQoSScheduler

__all__ = ["MClockScheduler", "ServerQoSScheduler"]
