"""A traditional server-centric QoS scheduler for the two-sided path.

Interposes between the data node's RPC dispatcher and its CPU: every
incoming request is queued per client, and a dispatch loop feeds the
CPU one request at a time, choosing

1. round-robin among clients that still hold reservation tokens for the
   current QoS period, then
2. round-robin among the rest (best-effort) — which makes the scheduler
   work-conserving.

Tokens are replenished every period from the configured reservations,
exactly mirroring Haechi's per-period contract, but enforced entirely
at the server — possible here *only* because two-sided requests pass
through the server CPU.  This is the design point of classic systems
like bQueue and mClock that Sec. IV discusses.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.common.errors import ConfigError, QoSError
from repro.common.types import OpType
from repro.kvstore import protocol
from repro.kvstore.records import SLOT_SIZE
from repro.kvstore.server import DataNode
from repro.rdma.verbs import WorkRequest


class _ClientQueue:
    """Per-client FIFO plus this period's remaining reservation tokens."""

    __slots__ = ("reservation", "tokens", "queue", "served")

    def __init__(self, reservation: int):
        self.reservation = reservation
        self.tokens = 0
        self.queue: Deque[Tuple[object, object]] = deque()
        self.served = 0


class ServerQoSScheduler:
    """Reservation-aware request scheduling at the data node CPU.

    Wraps an existing :class:`DataNode`: its GET/PUT handlers are
    re-registered to enqueue into the scheduler instead of hitting the
    CPU directly.  Clients are identified by their host name (the reply
    QP's destination), the natural identity a server-side scheduler
    has for a connection.
    """

    def __init__(self, data_node: DataNode, period: float):
        if period <= 0:
            raise ConfigError(f"period must be positive, got {period}")
        self.data_node = data_node
        self.sim = data_node.sim
        self.period = period
        self._clients: Dict[str, _ClientQueue] = {}
        self._reserved_rr: Deque[str] = deque()
        self._effort_rr: Deque[str] = deque()
        self._dispatching = False
        self._started = False
        self.total_served = 0

        # take over the data node's request handling
        dispatcher = data_node.dispatcher
        dispatcher._handlers[protocol.GetRequest] = self._enqueue
        dispatcher._handlers[protocol.PutRequest] = self._enqueue

    # ------------------------------------------------------------------
    def add_client(self, host_name: str, reservation_tokens: int) -> None:
        """Register a client's per-period reservation (tokens = I/Os)."""
        if host_name in self._clients:
            raise QoSError(f"client {host_name!r} already registered")
        if reservation_tokens < 0:
            raise QoSError(f"reservation must be >= 0, got {reservation_tokens}")
        self._clients[host_name] = _ClientQueue(reservation_tokens)

    def start(self) -> None:
        """Begin QoS periods (token replenishment)."""
        if self._started:
            raise QoSError("scheduler already started")
        self._started = True
        self._begin_period()

    def _begin_period(self) -> None:
        for state in self._clients.values():
            state.tokens = state.reservation
        self.sim.schedule(self.period, self._begin_period)
        self._dispatch()

    # ------------------------------------------------------------------
    def _enqueue(self, msg, reply_qp) -> None:
        name = reply_qp.dst.name
        state = self._clients.get(name)
        if state is None:
            # unregistered clients get best-effort-only treatment
            state = _ClientQueue(reservation=0)
            self._clients[name] = state
        state.queue.append((msg, reply_qp))
        self._dispatch()

    def _pick(self) -> Optional[str]:
        """Next client to serve: reserved first, then best-effort."""
        # refresh the round-robin rings lazily (clients can be added late)
        candidates = [
            name for name, state in self._clients.items()
            if state.queue and state.tokens > 0
        ]
        if candidates:
            ring = self._reserved_rr
        else:
            candidates = [
                name for name, state in self._clients.items() if state.queue
            ]
            ring = self._effort_rr
        if not candidates:
            return None
        # rotate the ring until we hit a candidate, appending unseen names
        for name in candidates:
            if name not in ring:
                ring.append(name)
        while True:
            name = ring[0]
            ring.rotate(-1)
            if name in candidates:
                return name

    def _dispatch(self) -> None:
        if self._dispatching:
            return
        name = self._pick()
        if name is None:
            return
        state = self._clients[name]
        msg, reply_qp = state.queue.popleft()
        if state.tokens > 0:
            state.tokens -= 1
        state.served += 1
        self.total_served += 1
        self._dispatching = True

        response, size = self._serve(msg)
        done = self.data_node.host.cpu.submit_rpc(size)
        self.sim.schedule_at(done, self._complete, response, size, reply_qp)

    def _complete(self, response, size, reply_qp) -> None:
        reply_qp.post_send(
            WorkRequest(opcode=OpType.SEND, payload=response, size=size,
                        is_response=True)
        )
        self._dispatching = False
        self._dispatch()

    def _serve(self, msg) -> Tuple[object, int]:
        store = self.data_node.store
        if isinstance(msg, protocol.GetRequest):
            if store.materialized:
                version, payload = store.get_local(msg.key)
            else:
                version, payload = 0, b""
            return (
                protocol.GetResponse(req_id=msg.req_id, key=msg.key,
                                     version=version, payload=payload),
                SLOT_SIZE,
            )
        if isinstance(msg, protocol.PutRequest):
            version = store.put_local(msg.key, msg.payload) if store.materialized else 0
            return (
                protocol.PutResponse(req_id=msg.req_id, key=msg.key,
                                     version=version),
                protocol.RESPONSE_HEADER_SIZE,
            )
        raise QoSError(f"unschedulable message {type(msg).__name__}")
