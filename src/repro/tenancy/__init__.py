"""Hierarchical tenant QoS: tenant -> client-group -> client.

The Haechi paper expresses every guarantee per client; serving millions
of users needs guarantees expressed per *tenant* (the software-defined
HPC QoS framework in PAPERS.md) with state aggregated across many
endpoints (RDMAvisor).  This package provides the hierarchy objects —
:class:`~repro.tenancy.hierarchy.Tenant` and
:class:`~repro.tenancy.hierarchy.ClientGroup` with nesting
reservation / limit / burst semantics — plus the leaf-enforcement
binding that lowers a hierarchy onto the existing per-client machinery
(:mod:`repro.tenancy.binding`) and the tenant-level water-filling the
global coordinator rebalances with (:mod:`repro.tenancy.rebalance`).

See ``docs/SCALE.md`` for the semantics and the validation story.
"""

from repro.tenancy.binding import (  # noqa: F401
    HierarchyBinding,
    bind_hierarchy,
    leaf_plan,
    leaf_reservations_ops,
)
from repro.tenancy.hierarchy import (  # noqa: F401
    ClientGroup,
    Tenant,
    TenantHierarchy,
    hierarchy_from_ops,
)
from repro.tenancy.rebalance import tenant_splits  # noqa: F401
