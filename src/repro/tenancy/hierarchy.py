"""The tenant -> client-group -> client QoS hierarchy.

Every level carries the same three knobs the flat protocol already has:

- **reservation** — guaranteed tokens/period, *nesting*: the sum of the
  children's reservations can never exceed the parent's, at any level,
  at any time.  Construction clamps violating children proportionally
  (largest-remainder, never above what a child asked for); runtime
  resizes apply the decrease-before-increase discipline PR 5
  established for coordinator splits, so the invariant holds at every
  intermediate step, not just at the boundaries.
- **limit** — optional tokens/period ceiling on the subtree's total
  usage.  A child with no explicit limit inherits a proportional share
  of the nearest ancestor limit (apportioned by reservation).
- **burst** — extra tokens a subtree may spend above its limit,
  refilled from unused limit headroom (a deterministic token bucket;
  exercised by the fluid engine, where per-period usage is explicit).

All arithmetic is integer-exact: apportionments go through the global
coordinator's largest-remainder helpers, so child shares always sum to
the parent total exactly and the ``hierarchy-conservation`` oracle can
assert the nesting invariant per epoch without tolerances.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.globalqos.waterfill import bounded_apportion, largest_remainder


@dataclasses.dataclass
class ClientGroup:
    """A leaf-level class of identical clients under one tenant.

    ``reservation`` is the *group total* (tokens/period); the per-client
    leaf grants are an even largest-remainder split over ``clients``.
    ``requested`` records what the group asked for before any clamping,
    so audits can tell a clamped group from a satisfied one.
    """

    name: str
    reservation: int
    clients: int = 1
    limit: Optional[int] = None
    burst: int = 0
    requested: int = dataclasses.field(default=-1)

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigError(
                f"group {self.name!r}: clients must be >= 1, "
                f"got {self.clients}"
            )
        if self.reservation < 0:
            raise ConfigError(
                f"group {self.name!r}: reservation must be >= 0, "
                f"got {self.reservation}"
            )
        if self.limit is not None and self.limit < self.reservation:
            raise ConfigError(
                f"group {self.name!r}: limit {self.limit} below "
                f"reservation {self.reservation}"
            )
        if self.burst < 0:
            raise ConfigError(
                f"group {self.name!r}: burst must be >= 0, got {self.burst}"
            )
        if self.requested < 0:
            self.requested = self.reservation

    def leaf_reservations(self) -> List[int]:
        """Per-client grants; sums to ``reservation`` exactly."""
        return largest_remainder(self.reservation, [1.0] * self.clients)


@dataclasses.dataclass
class Tenant:
    """One tenant: a reservation envelope over its client groups."""

    name: str
    reservation: int
    groups: List[ClientGroup] = dataclasses.field(default_factory=list)
    limit: Optional[int] = None
    burst: int = 0
    requested: int = dataclasses.field(default=-1)

    def __post_init__(self) -> None:
        if self.reservation < 0:
            raise ConfigError(
                f"tenant {self.name!r}: reservation must be >= 0, "
                f"got {self.reservation}"
            )
        if self.limit is not None and self.limit < self.reservation:
            raise ConfigError(
                f"tenant {self.name!r}: limit {self.limit} below "
                f"reservation {self.reservation}"
            )
        if self.burst < 0:
            raise ConfigError(
                f"tenant {self.name!r}: burst must be >= 0, got {self.burst}"
            )
        if not self.groups:
            raise ConfigError(f"tenant {self.name!r} has no client groups")
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise ConfigError(
                f"tenant {self.name!r}: duplicate group names {names}"
            )
        if self.requested < 0:
            self.requested = self.reservation

    @property
    def child_sum(self) -> int:
        return sum(g.reservation for g in self.groups)

    @property
    def total_clients(self) -> int:
        return sum(g.clients for g in self.groups)

    def group(self, name: str) -> ClientGroup:
        for g in self.groups:
            if g.name == name:
                return g
        raise ConfigError(f"tenant {self.name!r} has no group {name!r}")


class TenantHierarchy:
    """The full hierarchy, with clamping, resizing, and auditing.

    ``capacity`` is the root envelope (tokens/period) — typically the
    admission controller's global capacity.  Construction clamps, in
    order, (1) each tenant's group sums against the tenant reservation
    and (2) the tenant sums against ``capacity``; a tenant clamp
    cascades back down to its groups.  Every clamp is recorded in
    ``clamp_events`` with the level, subject, requested, and granted
    values, so "who did not get what they asked for" is auditable.
    """

    def __init__(self, tenants: List[Tenant],
                 capacity: Optional[int] = None):
        if not tenants:
            raise ConfigError("hierarchy needs at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names {names}")
        if capacity is not None and capacity < 0:
            raise ConfigError(f"capacity must be >= 0, got {capacity}")
        self.tenants = list(tenants)
        self.capacity = capacity
        self.clamp_events: List[dict] = []
        self.resize_events: List[dict] = []
        self.epoch = 0

        for tenant in self.tenants:
            self._clamp_groups(tenant, at="construction")
        if capacity is not None:
            total = sum(t.reservation for t in self.tenants)
            if total > capacity:
                shares = bounded_apportion(
                    capacity,
                    [float(t.reservation) for t in self.tenants],
                    [t.reservation for t in self.tenants],
                )
                for tenant, share in zip(self.tenants, shares):
                    if share < tenant.reservation:
                        self.clamp_events.append({
                            "at": "construction", "level": "tenant",
                            "subject": tenant.name,
                            "requested": tenant.reservation,
                            "granted": share,
                        })
                        tenant.reservation = share
                        self._clamp_groups(tenant, at="construction")

    # ------------------------------------------------------------------
    def _clamp_groups(self, tenant: Tenant, at: str) -> List[Tuple]:
        """Shrink ``tenant``'s groups until their sum fits its
        reservation (proportional, never above a group's current
        value).  Returns the ``(group, old, new)`` decrease ops."""
        ops: List[Tuple] = []
        if tenant.child_sum <= tenant.reservation:
            return ops
        shares = bounded_apportion(
            tenant.reservation,
            [float(g.reservation) for g in tenant.groups],
            [g.reservation for g in tenant.groups],
        )
        for group, share in zip(tenant.groups, shares):
            if share < group.reservation:
                ops.append((group.name, group.reservation, share))
                self.clamp_events.append({
                    "at": at, "level": "group",
                    "subject": f"{tenant.name}/{group.name}",
                    "requested": group.reservation, "granted": share,
                })
                group.reservation = share
        return ops

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def tenant(self, name: str) -> Tenant:
        for t in self.tenants:
            if t.name == name:
                return t
        raise ConfigError(f"no tenant named {name!r}")

    @property
    def total_reserved(self) -> int:
        return sum(t.reservation for t in self.tenants)

    @property
    def total_clients(self) -> int:
        return sum(t.total_clients for t in self.tenants)

    def groups(self):
        """Iterate ``(tenant, group)`` pairs in hierarchy order."""
        for tenant in self.tenants:
            for group in tenant.groups:
                yield tenant, group

    def effective_limit(self, tenant: Tenant,
                        group: ClientGroup) -> Optional[int]:
        """The group's usage ceiling after ancestor limits.

        An explicit group limit wins; otherwise the nearest ancestor
        limit is apportioned over that ancestor's children by
        reservation (largest remainder), so sibling ceilings sum to the
        ancestor's exactly.  ``None`` when no level caps the group.
        """
        if group.limit is not None:
            if tenant.limit is None:
                return group.limit
            return min(group.limit, tenant.limit)
        if tenant.limit is None:
            return None
        shares = largest_remainder(
            tenant.limit, [float(g.reservation) for g in tenant.groups]
        )
        return shares[tenant.groups.index(group)]

    # ------------------------------------------------------------------
    # Runtime resize (the coordinator's apply path)
    # ------------------------------------------------------------------
    def resize_tenant(self, name: str, reservation: int) -> List[dict]:
        """Resize a tenant's envelope, decrease-before-increase.

        Returns the ordered op list the caller must apply to the leaf
        enforcement (monitors / fluid flows) **in order**:

        - shrinking: group decreases first (clamped proportionally so
          the child sum fits the new envelope), then the tenant-level
          change — the nesting invariant holds at every step;
        - growing: the tenant-level change first, then nothing — groups
          keep their grants and the caller may grow them afterwards
          through :meth:`resize_group` (each checked on entry).

        Every op is ``{"level", "subject", "old", "new"}``.
        """
        if reservation < 0:
            raise ConfigError(
                f"reservation must be >= 0, got {reservation}"
            )
        tenant = self.tenant(name)
        old = tenant.reservation
        ops: List[dict] = []
        if reservation < old:
            tenant.reservation = reservation
            for gname, gold, gnew in self._clamp_groups(
                    tenant, at=f"resize@{self.epoch}"):
                ops.append({
                    "level": "group", "subject": f"{name}/{gname}",
                    "old": gold, "new": gnew,
                })
            ops.append({
                "level": "tenant", "subject": name,
                "old": old, "new": reservation,
            })
        else:
            if self.capacity is not None:
                others = self.total_reserved - old
                if others + reservation > self.capacity:
                    reservation = self.capacity - others
            tenant.reservation = reservation
            ops.append({
                "level": "tenant", "subject": name,
                "old": old, "new": reservation,
            })
        self.resize_events.append({
            "epoch": self.epoch, "tenant": name,
            "old": old, "new": reservation, "ops": list(ops),
        })
        return ops

    def resize_group(self, tenant_name: str, group_name: str,
                     reservation: int) -> dict:
        """Resize one group within its tenant envelope (clamped, never
        rejected — the rejoin/rebalance idiom)."""
        if reservation < 0:
            raise ConfigError(
                f"reservation must be >= 0, got {reservation}"
            )
        tenant = self.tenant(tenant_name)
        group = tenant.group(group_name)
        old = group.reservation
        headroom = tenant.reservation - (tenant.child_sum - old)
        granted = min(reservation, max(0, headroom))
        if granted < reservation:
            self.clamp_events.append({
                "at": f"resize@{self.epoch}", "level": "group",
                "subject": f"{tenant_name}/{group_name}",
                "requested": reservation, "granted": granted,
            })
        group.reservation = granted
        op = {
            "level": "group", "subject": f"{tenant_name}/{group_name}",
            "old": old, "new": granted,
        }
        self.resize_events.append({
            "epoch": self.epoch, "tenant": tenant_name,
            "group": group_name, "old": old, "new": granted,
            "ops": [op],
        })
        return op

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------
    def conservation_violations(self) -> List[str]:
        """The nesting invariant, checked at every level right now.

        Empty list = healthy.  The ``hierarchy-conservation`` oracle
        runs this per epoch over recorded snapshots.
        """
        problems: List[str] = []
        if (self.capacity is not None
                and self.total_reserved > self.capacity):
            problems.append(
                f"tenant reservations sum to {self.total_reserved} > "
                f"capacity {self.capacity}"
            )
        for tenant in self.tenants:
            if tenant.child_sum > tenant.reservation:
                problems.append(
                    f"tenant {tenant.name}: group reservations sum to "
                    f"{tenant.child_sum} > envelope {tenant.reservation}"
                )
            for group in tenant.groups:
                leaves = group.leaf_reservations()
                if sum(leaves) != group.reservation:
                    problems.append(
                        f"group {tenant.name}/{group.name}: leaf grants "
                        f"sum to {sum(leaves)} != {group.reservation}"
                    )
        return problems

    def snapshot(self) -> dict:
        """One epoch's audit record (JSON-serializable)."""
        return {
            "epoch": self.epoch,
            "capacity": self.capacity,
            "total_reserved": self.total_reserved,
            "tenants": {
                t.name: {
                    "reservation": t.reservation,
                    "limit": t.limit,
                    "burst": t.burst,
                    "child_sum": t.child_sum,
                    "groups": {
                        g.name: {
                            "reservation": g.reservation,
                            "limit": g.limit,
                            "burst": g.burst,
                            "clients": g.clients,
                        }
                        for g in t.groups
                    },
                }
                for t in self.tenants
            },
        }

    # ------------------------------------------------------------------
    def metrics_items(self):
        """``(name, getter)`` pairs for the telemetry metrics registry.

        Registered only for hierarchy-bound clusters (the PR 5 idiom:
        hierarchy-free runs keep their metric streams byte-stable).
        """
        return [
            ("tenancy_tenants", lambda: len(self.tenants)),
            ("tenancy_clients", lambda: self.total_clients),
            ("tenancy_total_reserved", lambda: self.total_reserved),
            ("tenancy_clamp_events", lambda: len(self.clamp_events)),
            ("tenancy_resize_events", lambda: len(self.resize_events)),
            ("tenancy_conservation_violations",
             lambda: len(self.conservation_violations())),
        ]


def hierarchy_from_ops(spec: List[dict], config,
                       capacity_ops: Optional[float] = None
                       ) -> TenantHierarchy:
    """Build a hierarchy from an ops/s spec list (JSON-friendly).

    ``spec`` is ``[{"name", "reservation_ops", "limit_ops"?, "burst_ops"?,
    "groups": [{"name", "reservation_ops", "clients", ...}]}]``; every
    rate converts to tokens per (dilated) period through ``config``, the
    same conversion the flat builders use.
    """
    def tokens(ops):
        return None if ops is None else config.tokens_per_period(ops)

    tenants = []
    for t in spec:
        groups = [
            ClientGroup(
                name=g["name"],
                reservation=tokens(g["reservation_ops"]),
                clients=g.get("clients", 1),
                limit=tokens(g.get("limit_ops")),
                burst=tokens(g.get("burst_ops")) or 0,
            )
            for g in t["groups"]
        ]
        tenants.append(Tenant(
            name=t["name"],
            reservation=tokens(t["reservation_ops"]),
            groups=groups,
            limit=tokens(t.get("limit_ops")),
            burst=tokens(t.get("burst_ops")) or 0,
        ))
    capacity = tokens(capacity_ops)
    return TenantHierarchy(tenants, capacity=capacity)
