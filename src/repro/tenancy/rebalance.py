"""Tenant-level cross-node rebalancing for the global coordinator.

The flat coordinator water-fills each client's demand independently, which
scales linearly in clients — fine for tens, wrong for the RDMAvisor
regime where thousands of endpoints share state.  Here the water-fill
runs at *tenant* granularity: member demands aggregate into one tenant
demand vector, :func:`~repro.globalqos.waterfill.waterfill_splits`
places the tenant aggregates against node headroom, and the tenant's
per-node totals are handed back down to its members by a greedy
transportation fill that conserves **both** marginals exactly — every
member's split still sums to its own aggregate reservation (the ledger
audit's invariant, unchanged) and the members' per-node shares sum to
the tenant's placement.

Infeasibility (a member that cannot absorb its aggregate under the
per-node ``max_split`` caps within the tenant's placement) falls back
to the splits currently in force for the whole tenant — the same
"feasible by induction" escape hatch the flat water-filling uses.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.common.errors import ConfigError
from repro.globalqos.waterfill import waterfill_splits


def _member_fill(
    members: List[int],
    aggregates: Mapping[int, int],
    demands: Mapping[int, Sequence[int]],
    tenant_totals: List[int],
    max_split: Sequence[int],
) -> Dict[int, List[int]]:
    """Distribute a tenant's per-node totals to its members.

    Greedy transportation fill: members in sorted id order, each taking
    from its own most-demanded nodes first (node index breaks ties),
    bounded by the node's remaining tenant total and ``max_split``.
    Raises ``ConfigError`` on infeasibility — the caller catches it and
    keeps the splits in force.
    """
    num_nodes = len(tenant_totals)
    remaining = list(tenant_totals)
    out: Dict[int, List[int]] = {}
    for cid in members:
        split = [0] * num_nodes
        need = aggregates[cid]
        order = sorted(
            range(num_nodes), key=lambda n: (-demands[cid][n], n)
        )
        for n in order:
            if need == 0:
                break
            take = min(need, remaining[n], max_split[n])
            split[n] += take
            remaining[n] -= take
            need -= take
        if need > 0:
            raise ConfigError(
                f"member {cid}: {need} tokens unplaceable in tenant fill"
            )
        out[cid] = split
    return out


def tenant_splits(
    aggregates: Dict[int, int],
    demands: Dict[int, Sequence[int]],
    node_caps: Sequence[int],
    current: Dict[int, Sequence[int]],
    max_split: Sequence[int],
    tenant_of: Mapping[int, str],
) -> Dict[int, List[int]]:
    """Water-fill at tenant granularity, then fill members.

    Same signature as :func:`waterfill_splits` plus ``tenant_of``
    (client id -> tenant name; every id in ``aggregates`` must be
    mapped).  Returns per-*client* splits: each sums to the client's
    aggregate exactly, so the coordinator's apply path, hysteresis,
    ledger events, and conservation audit all work unchanged.
    """
    num_nodes = len(node_caps)
    members_of: Dict[str, List[int]] = {}
    for cid in sorted(aggregates):
        if cid not in tenant_of:
            raise ConfigError(f"client {cid} has no tenant mapping")
        members_of.setdefault(tenant_of[cid], []).append(cid)

    tenant_ids = sorted(members_of)
    # Tenant-level aggregation.  Index tenants by their sorted position
    # so the waterfill sees plain integer ids.
    t_aggregates = {}
    t_demands = {}
    t_current = {}
    for i, tname in enumerate(tenant_ids):
        members = members_of[tname]
        t_aggregates[i] = sum(aggregates[cid] for cid in members)
        t_demands[i] = [
            sum(demands[cid][n] for cid in members)
            for n in range(num_nodes)
        ]
        t_current[i] = [
            sum(current[cid][n] for cid in members)
            for n in range(num_nodes)
        ]
    # A tenant may legitimately hold more than one client's worth of
    # reservation on a node, so the per-bin cap for the tenant fill is
    # the member count times the per-client cap (still node-capped by
    # node_caps inside the waterfill).
    t_max_split = [
        [min(max_split[n] * len(members_of[t]),
             max(max_split[n], t_current[i][n]))
         for n in range(num_nodes)]
        for i, t in enumerate(tenant_ids)
    ]
    # waterfill_splits takes one max_split vector for all clients; use
    # the elementwise max so no tenant's feasible desire is rejected,
    # then enforce the per-member cap in the member fill below.
    merged_max = [
        max(t_max_split[i][n] for i in range(len(tenant_ids)))
        for n in range(num_nodes)
    ]
    placements = waterfill_splits(
        t_aggregates, t_demands, node_caps, t_current, merged_max
    )

    out: Dict[int, List[int]] = {}
    for i, tname in enumerate(tenant_ids):
        members = members_of[tname]
        try:
            filled = _member_fill(
                members, aggregates, demands, placements[i], max_split
            )
        except ConfigError:
            filled = {cid: list(current[cid]) for cid in members}
        out.update(filled)

    for cid in sorted(aggregates):
        if sum(out[cid]) != aggregates[cid]:
            out[cid] = list(current[cid])
    return out
