"""Lowering a :class:`TenantHierarchy` onto the per-client DES machinery.

The hierarchy is a control-plane object; the simulated cluster only
knows flat per-client reservations.  This module is the bridge:

- :func:`leaf_plan` flattens the hierarchy into the deterministic
  ``(tenant, group, leaf_tokens)`` sequence clients are built from,
  and :func:`leaf_reservations_ops` converts it to the ops/s list
  ``build_cluster`` accepts (the token round-trip is exact).
- :class:`HierarchyBinding` attaches the hierarchy to a built cluster:
  it stamps each :class:`~repro.cluster.builder.ClientContext` with its
  ``tenant``/``group``, installs the monitor-side *leaf enforcement
  guard* (a coordinator resize can never push a group's member sum past
  the group's effective limit), and exposes the per-tenant rollup the
  metrics facade's ``tenancy`` block reads.

Rollups are integer-exact by construction: the per-tenant completed
counts are sums over the monitor's own per-period records, so the
tenant view and the per-client view can never disagree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.tenancy.hierarchy import TenantHierarchy


def leaf_plan(hierarchy: TenantHierarchy) -> List[Tuple[str, str, int]]:
    """Flatten to ``(tenant_name, group_name, leaf_tokens)`` triples.

    Hierarchy order (tenants, then groups, then leaf index) — the same
    order client indices are assigned in, so triple *i* describes
    client *i*.
    """
    plan: List[Tuple[str, str, int]] = []
    for tenant, group in hierarchy.groups():
        for tokens in group.leaf_reservations():
            plan.append((tenant.name, group.name, tokens))
    return plan


def leaf_reservations_ops(hierarchy: TenantHierarchy, config) -> List[float]:
    """The per-client ops/s list ``build_cluster`` needs.

    ``config.tokens_per_period`` rounds ``rate * period``; feeding it
    ``tokens / period`` returns exactly ``tokens``, so the built
    cluster's grants match the hierarchy's leaves token-for-token.
    """
    return [config.rate_of(tokens) for _, _, tokens in leaf_plan(hierarchy)]


class HierarchyBinding:
    """A hierarchy attached to one built single-node cluster."""

    def __init__(self, cluster, hierarchy: TenantHierarchy):
        if len(cluster.clients) != hierarchy.total_clients:
            raise ConfigError(
                f"hierarchy describes {hierarchy.total_clients} clients, "
                f"cluster has {len(cluster.clients)}"
            )
        self.cluster = cluster
        self.hierarchy = hierarchy
        plan = leaf_plan(hierarchy)
        self.tenant_of: Dict[int, str] = {}
        self.group_of: Dict[int, str] = {}
        self._members: Dict[Tuple[str, str], List[int]] = {}
        for ctx, (tname, gname, tokens) in zip(cluster.clients, plan):
            self.tenant_of[ctx.index] = tname
            self.group_of[ctx.index] = gname
            ctx.tenant = tname
            ctx.group = gname
            ctx.kv.tenant = tname
            self._members.setdefault((tname, gname), []).append(ctx.index)
        if cluster.monitor is not None:
            cluster.monitor.reservation_guard = self.guard
        cluster.tenancy = self

    # ------------------------------------------------------------------
    # Leaf enforcement (the monitor's resize guard)
    # ------------------------------------------------------------------
    def guard(self, client_id: int, requested: int) -> int:
        """Cap a client resize so its group stays within its ceiling.

        The ceiling is the group's effective limit when one applies,
        otherwise the group's reservation envelope; the other members'
        *current* monitor grants fill it first.  Clamped, never
        rejected — the established rebalance idiom.
        """
        tname = self.tenant_of.get(client_id)
        if tname is None:
            return requested
        tenant = self.hierarchy.tenant(tname)
        group = tenant.group(self.group_of[client_id])
        cap = self.hierarchy.effective_limit(tenant, group)
        if cap is None:
            cap = group.reservation
        monitor = self.cluster.monitor
        others = 0
        for member in self._members[(tname, group.name)]:
            if member == client_id:
                continue
            slot = monitor._clients.get(member)
            if slot is not None:
                others += slot.reservation
        return min(requested, max(0, cap - others))

    # ------------------------------------------------------------------
    # Rollups (the facade's tenancy block)
    # ------------------------------------------------------------------
    def members(self, tenant_name: str) -> List[int]:
        """Client indices belonging to ``tenant_name``."""
        return [
            cid for cid, t in sorted(self.tenant_of.items())
            if t == tenant_name
        ]

    def tenant_rollup(self) -> Dict[str, dict]:
        """Per-tenant reservation, completions, and attainment.

        ``completed`` sums the monitor's own per-period ``per_client``
        records over the tenant's members, so the rollup and the flat
        per-client telemetry are the same numbers by construction.
        ``attainment`` is mean per-period completions over the tenant
        envelope, matching ``globalqos.scenario.measure_attainment``.
        """
        monitor = self.cluster.monitor
        records = monitor.period_records if monitor is not None else []
        out: Dict[str, dict] = {}
        for tenant in self.hierarchy.tenants:
            ids = set(self.members(tenant.name))
            completed = 0
            for record in records:
                completed += sum(
                    count for cid, count in record["per_client"].items()
                    if cid in ids
                )
            periods = len(records)
            attainment = None
            if periods and tenant.reservation > 0:
                attainment = (completed / periods) / tenant.reservation
            out[tenant.name] = {
                "reservation": tenant.reservation,
                "clients": len(ids),
                "completed": completed,
                "attainment": attainment,
            }
        return out

    def ledger_rollup(self) -> Dict[str, dict]:
        """Per-tenant token flow from the attached ledger (empty when
        telemetry runs without one); sums of exactly-balanced accounts
        via :meth:`~repro.telemetry.ledger.TokenLedger.totals_by`."""
        hub = getattr(self.cluster.sim, "telemetry", None)
        ledger = getattr(hub, "ledger", None)
        if ledger is None:
            return {}
        name_to_tenant = {
            ctx.name: self.tenant_of[ctx.index]
            for ctx in self.cluster.clients
        }
        return ledger.totals_by(name_to_tenant.get)

    def rollup_conservation(self) -> List[str]:
        """Nesting invariant *as enforced*, not just as configured.

        On top of the hierarchy's own structural check, verifies that
        the monitor's live member grants still fit each group's ceiling
        (the property the resize guard maintains).
        """
        problems = list(self.hierarchy.conservation_violations())
        monitor = self.cluster.monitor
        if monitor is None:
            return problems
        for tenant, group in self.hierarchy.groups():
            cap = self.hierarchy.effective_limit(tenant, group)
            if cap is None:
                cap = group.reservation
            live = sum(
                monitor._clients[m].reservation
                for m in self._members[(tenant.name, group.name)]
                if m in monitor._clients
            )
            if live > cap:
                problems.append(
                    f"group {tenant.name}/{group.name}: live grants sum "
                    f"to {live} > ceiling {cap}"
                )
        return problems

    # ------------------------------------------------------------------
    def metrics_items(self):
        """Gauges for hierarchy-bound clusters (conditional: the PR 5
        idiom keeps hierarchy-free metric streams byte-stable)."""
        items = list(self.hierarchy.metrics_items())
        monitor = self.cluster.monitor
        if monitor is not None:
            items.append((
                "tenancy_hierarchy_clamped",
                lambda: monitor.hierarchy_clamped,
            ))
        items.append((
            "tenancy_rollup_violations",
            lambda: len(self.rollup_conservation()),
        ))
        return items


def bind_hierarchy(cluster, hierarchy: TenantHierarchy) -> HierarchyBinding:
    """Attach ``hierarchy`` to ``cluster`` (see :class:`HierarchyBinding`)."""
    return HierarchyBinding(cluster, hierarchy)
