"""Command-line interface: run canned Haechi experiments from a shell.

Subcommands::

    python -m repro profile   [--clients 10] [--periods 20] [--scale 500]
    python -m repro run       [--mode haechi|basic|bare] [--distribution ...]
                              [--reserved-fraction 0.9] [--pattern ...]
    python -m repro faults    [--kind control-loss|client-crash ...]
    python -m repro chaos     [--seeds 11 23 ...]
    python -m repro globalqos [--seeds 11 23 ...] [--chaos]
                              [--partition-chaos] [--report out.json]
    python -m repro telemetry [--sample N] [--trace out.json]
                              [--chaos-seed N] [--overhead-check]
    python -m repro figures
    python -m repro bench     [--workers N] [--cache DIR]
                              [--distribution uniform|zipf|both]
    python -m repro hunt      [--budget N] [--seed N] [--no-minimize]
                              [--report out.json] [--reproducers DIR]
                              [--replay repro.json]
    python -m repro scale     [--clients N] [--tenants N] [--periods N]
                              [--seed N] [--validate] [--report out.json]
    python -m repro policy    {list,show,validate,diff,apply} ...

``run`` prints the per-client reservation-vs-served table for the
chosen configuration, the bread-and-butter view of the paper's
evaluation.  ``telemetry`` runs a scenario with span sampling on and
prints the per-stage latency decomposition (docs/OBSERVABILITY.md),
with optional Perfetto/JSONL exports and the CI overhead gate.
``figures`` lists the benchmark that regenerates each of the paper's
tables/figures.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import format_table, meets_reservation
from repro.common.types import QoSMode
from repro.cluster.experiment import run_experiment
from repro.cluster.metrics import robustness_summary
from repro.cluster.profiling import run_profiling
from repro.cluster.scale import SimScale
from repro.cluster.scenarios import (
    FAULT_KINDS,
    bare_cluster,
    faulty_qos_cluster,
    paper_demands,
    qos_cluster,
    reservation_set,
)
from repro.workloads.patterns import BURST_WINDOW, RequestPattern

_MODES = {
    "haechi": QoSMode.HAECHI,
    "basic": QoSMode.BASIC_HAECHI,
    "bare": QoSMode.BARE,
}

_CAPACITY = 1_570_000


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Haechi reproduction: token-based QoS for one-sided "
                    "RDMA storage (ICDCS 2021).",
    )
    sub = parser.add_subparsers(dest="command", required=True)


    profile = sub.add_parser("profile", help="profile saturated capacity")
    profile.add_argument("--clients", type=int, default=10)
    profile.add_argument("--periods", type=int, default=20)
    profile.add_argument("--scale", type=float, default=500)

    run = sub.add_parser("run", help="run a QoS scenario")
    run.add_argument("--mode", choices=sorted(_MODES), default="haechi")
    run.add_argument("--distribution", choices=["uniform", "zipf", "spike"],
                     default="zipf")
    run.add_argument("--reserved-fraction", type=float, default=0.9)
    run.add_argument("--pattern", choices=["burst", "constant-rate"],
                     default="burst")
    run.add_argument("--clients", type=int, default=10)
    run.add_argument("--periods", type=int, default=8)
    run.add_argument("--warmup", type=int, default=3)
    run.add_argument("--scale", type=float, default=200)
    run.add_argument("--window", type=int, default=None,
                     help="completion-gated window for burst apps "
                          "(default: token-paced)")

    faults = sub.add_parser(
        "faults", help="run a QoS scenario under an injected fault plan"
    )
    faults.add_argument("--kind", choices=FAULT_KINDS, default="control-loss")
    faults.add_argument("--rate", type=float, default=0.05,
                        help="per-op probability for probabilistic kinds")
    faults.add_argument("--client", type=int, default=0,
                        help="victim client index for crash/qp-close kinds")
    faults.add_argument("--factor", type=float, default=0.5,
                        help="remaining NIC capacity during a brownout")
    faults.add_argument("--start-period", type=int, default=2)
    faults.add_argument("--end-period", type=int, default=None)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--distribution", choices=["uniform", "zipf", "spike"],
                        default="uniform")
    faults.add_argument("--reserved-fraction", type=float, default=0.75)
    faults.add_argument("--clients", type=int, default=3)
    faults.add_argument("--periods", type=int, default=10)
    faults.add_argument("--warmup", type=int, default=3)
    faults.add_argument("--scale", type=float, default=200)

    chaos = sub.add_parser(
        "chaos",
        help="seeded chaos runs over the replicated cluster "
             "(crash/failover invariant checks)",
    )
    chaos.add_argument("--seeds", type=int, nargs="+", default=None,
                       help="seeds to run (default: the documented set)")
    chaos.add_argument("--clients", type=int, default=4)
    chaos.add_argument("--periods", type=int, default=10)

    globalqos = sub.add_parser(
        "globalqos",
        help="multi-node global coordinator: static-vs-coordinated skew "
             "comparison, coordinator-crash chaos (--chaos), or "
             "partition/failover chaos (--partition-chaos)",
    )
    globalqos.add_argument("--seeds", type=int, nargs="+", default=None,
                           help="seeds to run (default: the documented set)")
    globalqos.add_argument("--chaos", action="store_true",
                           help="run the coordinator-crash chaos invariants "
                                "instead of the skew comparison")
    globalqos.add_argument("--partition-chaos", action="store_true",
                           help="run the asymmetric-partition / failover / "
                                "fail-slow chaos invariants (HA build with "
                                "warm standby and quarantine armed)")
    globalqos.add_argument("--periods", type=int, default=None,
                           help="chaos run length in QoS periods (default "
                                "18, or 36 with --partition-chaos)")
    globalqos.add_argument("--takeover-after", type=int, default=2,
                           help="silent epochs before the standby takes "
                                "over (--partition-chaos only)")
    globalqos.add_argument("--rebalance-periods", type=int, default=2,
                           help="QoS periods per rebalance epoch")
    globalqos.add_argument("--fallback-after", type=int, default=2,
                           help="silent epochs before clients restore the "
                                "static even split")
    globalqos.add_argument("--report", metavar="PATH", default=None,
                           help="write the per-seed verdicts and ledger "
                                "conservation audit as JSON")

    telemetry = sub.add_parser(
        "telemetry",
        help="run a traced scenario: per-stage latency breakdown, "
             "Perfetto/JSONL exports, overhead gate",
    )
    telemetry.add_argument("--mode", choices=sorted(_MODES), default="haechi")
    telemetry.add_argument("--access", choices=["one-sided", "two-sided"],
                           default="one-sided",
                           help="data path for the bare scenario "
                                "(QoS modes are one-sided by design)")
    telemetry.add_argument("--clients", type=int, default=4)
    telemetry.add_argument("--periods", type=int, default=6)
    telemetry.add_argument("--warmup", type=int, default=2)
    telemetry.add_argument("--scale", type=float, default=200)
    telemetry.add_argument("--sample", type=int, default=10,
                           help="span sampling: record 1 op in N "
                                "(1 = every op, 0 = data spans off)")
    telemetry.add_argument("--trace", metavar="PATH", default=None,
                           help="write a Perfetto trace_event JSON file")
    telemetry.add_argument("--metrics", metavar="PATH", default=None,
                           help="write per-period metric snapshots as JSONL")
    telemetry.add_argument("--ledger", metavar="PATH", default=None,
                           help="write the token-ledger audit stream as JSONL")
    telemetry.add_argument("--chaos-seed", type=int, default=None,
                           help="trace one seeded chaos run instead of a "
                                "QoS scenario")
    telemetry.add_argument("--overhead-check", action="store_true",
                           help="measure wall-clock overhead at "
                                "off/sampled rates and enforce the "
                                "committed baseline's bounds")
    telemetry.add_argument(
        "--baseline", default="benchmarks/results/telemetry_baseline.json",
        help="overhead-bound file for --overhead-check",
    )

    sub.add_parser("figures", help="list the paper-figure benchmarks")

    figure = sub.add_parser(
        "figure", help="regenerate one paper figure from a preset"
    )
    figure.add_argument("name", help="preset name (see `figure --list`)")
    figure.add_argument("--quick", action="store_true",
                        help="coarser dilation, fewer periods")

    bench = sub.add_parser(
        "bench",
        help="run a sweep through the parallel cell runner",
    )
    bench.add_argument("--workers", type=int, default=1,
                       help="worker processes (results are byte-identical "
                            "for any count)")
    bench.add_argument("--cache", default=None, metavar="DIR",
                       help="result-cache directory (cells re-run only "
                            "when their config hash is new)")
    bench.add_argument("--distribution", default="both",
                       choices=["uniform", "zipf", "both"])
    bench.add_argument("--seed", type=int, default=0,
                       help="master seed fed to every cell")
    bench.add_argument("--json", action="store_true",
                       help="print the canonical merged JSON instead of "
                            "the table")

    hunt = sub.add_parser(
        "hunt",
        help="search the scenario space for oracle violations "
             "(docs/HUNT.md)",
    )
    hunt.add_argument("--budget", type=int, default=40,
                      help="candidate runs in the search phase")
    hunt.add_argument("--seed", type=int, default=0,
                      help="campaign master seed (same seed + budget = "
                           "byte-identical report)")
    hunt.add_argument("--batch", type=int, default=8,
                      help="candidates per runner fan-out")
    hunt.add_argument("--minimize", action=argparse.BooleanOptionalAction,
                      default=True,
                      help="delta-debug each finding to a minimal spec")
    hunt.add_argument("--workers", type=int, default=1,
                      help="worker processes for candidate fan-out")
    hunt.add_argument("--cache", default=None, metavar="DIR",
                      help="runner result-cache directory")
    hunt.add_argument("--report", default=None, metavar="PATH",
                      help="write the campaign report JSON here")
    hunt.add_argument("--reproducers", default=None, metavar="DIR",
                      help="write one reproducer file per finding here")
    hunt.add_argument("--replay", default=None, metavar="PATH",
                      help="replay one reproducer file instead of "
                           "searching; exit 0 iff it still reproduces")

    scale = sub.add_parser(
        "scale",
        help="fluid-approximation scale run: 10^4-10^6 simulated "
             "clients in seconds (docs/SCALE.md), with the optional "
             "down-scaled fluid-vs-DES equivalence check",
    )
    scale.add_argument("--clients", type=int, default=100_000,
                       help="simulated client population")
    scale.add_argument("--tenants", type=int, default=4)
    scale.add_argument("--groups-per-tenant", type=int, default=4)
    scale.add_argument("--periods", type=int, default=30)
    scale.add_argument("--seed", type=int, default=11,
                       help="hierarchy-shape seed (the engine itself "
                            "has no RNG)")
    scale.add_argument("--brownout", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="inject the mid-run 60%% capacity brownout")
    scale.add_argument("--resize", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="apply the two-thirds-mark coordinator "
                            "resize (decrease-before-increase)")
    scale.add_argument("--validate", action="store_true",
                       help="also run the down-scaled fluid-vs-exact-DES "
                            "equivalence check on the same seed")
    scale.add_argument("--report", metavar="PATH", default=None,
                       help="write the full run (and validation) report "
                            "as JSON")
    scale.add_argument("--json", action="store_true",
                       help="print the canonical report JSON instead of "
                            "the tables")

    fabric = sub.add_parser(
        "fabric",
        help="congestion-controlled fabric smoke: incast with DCQCN "
             "on/off plus the fabric determinism digests (docs/FABRIC.md)",
    )
    fabric.add_argument("--seed", type=int, default=11,
                        help="scenario seed (ECN marks and verb mixes "
                             "derive private streams from it)")
    fabric.add_argument("--ops", type=int, default=1200,
                        help="ops per incast sender")
    fabric.add_argument("--digests", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="also recompute the fabric digest family "
                             "and compare against the committed "
                             "reference")
    fabric.add_argument("--report", metavar="PATH", default=None,
                        help="write the smoke report JSON here")

    policy = sub.add_parser(
        "policy",
        help="declarative QoS policy control plane: inspect, validate, "
             "diff, and hot-swap committed policy documents "
             "(docs/POLICY.md)",
    )
    policy_sub = policy.add_subparsers(dest="policy_command", required=True)
    policy_show = policy_sub.add_parser(
        "show", help="print one policy document (canonical JSON)"
    )
    policy_show.add_argument("name", help="builtin name or JSON path")
    policy_show.add_argument(
        "--schema", type=int, default=None,
        help="down-convert to this schema version before printing "
             "(what a consumer with that ceiling would receive)")
    policy_sub.add_parser(
        "list", help="list the committed builtin policy documents"
    )
    policy_validate = policy_sub.add_parser(
        "validate",
        help="load, schema-check, and round-trip every named document "
             "(default: all committed builtins)")
    policy_validate.add_argument(
        "names", nargs="*", help="builtin names or JSON paths")
    policy_diff = policy_sub.add_parser(
        "diff", help="field-level differences between two documents"
    )
    policy_diff.add_argument("old", help="builtin name or JSON path")
    policy_diff.add_argument("new", help="builtin name or JSON path")
    policy_apply = policy_sub.add_parser(
        "apply",
        help="run the policy-flip failover chaos scenario(s): the "
             "committed revision-2 flip hot-swapped at the takeover "
             "epoch, with conservation and fencing audits")
    policy_apply.add_argument("--seeds", type=int, nargs="+", default=None,
                              help="seeds to run (default: the "
                                   "documented set)")
    policy_apply.add_argument("--periods", type=int, default=36)
    policy_apply.add_argument("--report", metavar="PATH", default=None,
                              help="write the per-seed conservation "
                                   "report JSON here")
    policy_apply.add_argument(
        "--digests", action=argparse.BooleanOptionalAction, default=False,
        help="also recompute the policy digest family and compare "
             "against the committed reference")
    return parser


def _cmd_profile(args) -> int:
    scale = SimScale(factor=args.scale, interval_divisor=100)
    profiled = run_profiling(
        num_clients=args.clients, periods=args.periods, scale=scale
    )
    kiops = scale.kiops(profiled.mean)
    sigma = scale.kiops(profiled.stddev)
    print(f"profiled capacity: {kiops:.1f} KIOPS "
          f"(sigma {sigma:.2f}, {args.periods} periods, "
          f"{args.clients} clients)")
    print(f"Algorithm-1 floor (mean - 3*sigma): "
          f"{kiops - 3 * sigma:.1f} KIOPS")
    return 0


def _cmd_run(args) -> int:
    if not 0 < args.reserved_fraction <= 1:
        print("--reserved-fraction must be in (0, 1]", file=sys.stderr)
        return 2
    scale = SimScale(factor=args.scale, interval_divisor=200)
    reservations = reservation_set(
        args.distribution, args.reserved_fraction * _CAPACITY, args.clients
    )
    pool = (1 - args.reserved_fraction) * _CAPACITY
    demands = paper_demands(reservations, pool)
    pattern = (RequestPattern.BURST if args.pattern == "burst"
               else RequestPattern.CONSTANT_RATE)
    mode = _MODES[args.mode]

    if mode is QoSMode.BARE:
        cluster = bare_cluster(
            demands=demands, pattern=pattern, scale=scale,
            window=args.window or BURST_WINDOW,
        )
    else:
        cluster = qos_cluster(
            reservations=reservations, demands=demands, qos_mode=mode,
            pattern=pattern, scale=scale, window=args.window,
        )
    result = run_experiment(cluster, warmup_periods=args.warmup,
                            measure_periods=args.periods)

    verdicts = None
    if mode is not QoSMode.BARE:
        verdicts = meets_reservation(result, reservations)
    rows = []
    for i, reservation in enumerate(reservations):
        name = f"C{i+1}"
        row = [name, f"{reservation/1000:.0f}",
               f"{result.client_kiops(name):.0f}"]
        if verdicts is not None:
            row.append("yes" if verdicts[name] else "NO")
        rows.append(row)
    header = ["client", "reservation (KIOPS)", "served (KIOPS)"]
    if verdicts is not None:
        header.append("met")
    for line in format_table(header, rows):
        print(line)
    print(f"total: {result.total_kiops():.0f} KIOPS  "
          f"(mode={args.mode}, {args.distribution}, "
          f"{args.reserved_fraction:.0%} reserved, {args.pattern})")
    if verdicts is not None and not all(verdicts.values()):
        return 1
    return 0


def _cmd_faults(args) -> int:
    if not 0 < args.reserved_fraction <= 1:
        print("--reserved-fraction must be in (0, 1]", file=sys.stderr)
        return 2
    if not 0 <= args.client < args.clients:
        print(f"--client must be in [0, {args.clients})", file=sys.stderr)
        return 2
    from repro.common.errors import ConfigError

    scale = SimScale(factor=args.scale, interval_divisor=200)
    reservations = reservation_set(
        args.distribution, args.reserved_fraction * _CAPACITY, args.clients
    )
    pool = (1 - args.reserved_fraction) * _CAPACITY
    demands = paper_demands(reservations, pool)
    try:
        cluster = faulty_qos_cluster(
            reservations, demands,
            kind=args.kind,
            fault_seed=args.seed,
            fault_kwargs={
                "rate": args.rate,
                "client": args.client,
                "factor": args.factor,
                "start_period": args.start_period,
                "end_period": args.end_period,
            },
            scale=scale,
            master_seed=args.seed,
        )
    except ConfigError as err:
        print(err, file=sys.stderr)
        return 2
    result = run_experiment(cluster, warmup_periods=args.warmup,
                            measure_periods=args.periods)

    rows = []
    for i, reservation in enumerate(reservations):
        name = f"C{i+1}"
        rows.append([name, f"{reservation/1000:.0f}",
                     f"{result.client_kiops(name):.0f}"])
    for line in format_table(
        ["client", "reservation (KIOPS)", "served (KIOPS)"], rows
    ):
        print(line)
    summary = robustness_summary(cluster)
    faults_seen = summary.get("faults", {})
    print(f"total: {result.total_kiops():.0f} KIOPS  "
          f"(kind={args.kind}, rate={args.rate}, seed={args.seed})")
    print(f"faults: dropped={faults_seen.get('dropped_total', 0)}  "
          f"delayed={faults_seen.get('delayed_total', 0)}  "
          f"qps_closed={faults_seen.get('qps_closed', 0)}")
    monitor = summary.get("monitor", {})
    print(f"control plane: faa_failures={summary['faa_failures_total']}  "
          f"timeouts={summary['faa_timeouts_total']}  "
          f"degraded_entries={summary['degraded_entries_total']}  "
          f"stale_reports={monitor.get('stale_reports', 0)}  "
          f"clamped={monitor.get('clamped_reports', 0)}")
    for eviction in monitor.get("evictions", ()):
        print(f"evicted: client C{eviction['client'] + 1} at period "
              f"{eviction['period']} (reservation {eviction['reservation']})")
    return 0


def _cmd_chaos(args) -> int:
    from repro.common.errors import ConfigError
    from repro.recovery import DEFAULT_SEEDS, run_chaos

    seeds = args.seeds if args.seeds else list(DEFAULT_SEEDS)
    rows = []
    failed = 0
    for seed in seeds:
        try:
            report = run_chaos(seed, num_clients=args.clients,
                               periods=args.periods)
        except ConfigError as err:
            print(err, file=sys.stderr)
            return 2
        worst = (max(report.failover_durations)
                 if report.failover_durations else 0.0)
        rows.append([
            str(seed),
            "PASS" if report.ok else "FAIL",
            str(report.failovers),
            f"{worst * 1e3:.2f}",
            str(report.puts_acked),
            str(report.put_retries),
            str(report.duplicate_suppressed),
        ])
        if not report.ok:
            failed += 1
            for violation in report.violations:
                print(f"seed {seed}: {violation}", file=sys.stderr)
    for line in format_table(
        ["seed", "verdict", "failovers", "worst failover (ms)",
         "puts acked", "put retries", "replays suppressed"],
        rows,
    ):
        print(line)
    print(f"{len(seeds) - failed}/{len(seeds)} seeds passed "
          f"({args.clients} clients, {args.periods} periods)")
    return 1 if failed else 0


def _cmd_globalqos(args) -> int:
    import dataclasses
    import json

    from repro.common.errors import ConfigError
    from repro.globalqos import (
        DEFAULT_SEEDS,
        run_coord_chaos,
        run_partition_chaos,
        run_skewed_comparison,
    )

    if args.chaos and args.partition_chaos:
        print("--chaos and --partition-chaos are mutually exclusive",
              file=sys.stderr)
        return 2
    seeds = args.seeds if args.seeds else list(DEFAULT_SEEDS)
    mode = ("partition-chaos" if args.partition_chaos
            else "chaos" if args.chaos else "comparison")
    payload: dict = {"mode": mode, "seeds": {}}
    failed = 0
    rows = []
    if args.partition_chaos:
        periods = args.periods if args.periods is not None else 36
        for seed in seeds:
            try:
                report = run_partition_chaos(
                    seed, periods=periods,
                    rebalance_periods=args.rebalance_periods,
                    fallback_after=args.fallback_after,
                    takeover_after=args.takeover_after,
                )
            except ConfigError as err:
                print(err, file=sys.stderr)
                return 2
            rows.append([
                str(seed),
                "PASS" if report.ok else "FAIL",
                str(report.takeover_epoch),
                str(report.fenced_updates),
                str(report.stale_rejected),
                f"{report.quarantines}/{report.unquarantines}",
                str(report.fallbacks),
                str(report.puts_acked),
            ])
            payload["seeds"][str(seed)] = dataclasses.asdict(report)
            if not report.ok:
                failed += 1
                for violation in report.violations:
                    print(f"seed {seed}: {violation}", file=sys.stderr)
        for line in format_table(
            ["seed", "verdict", "takeover epoch", "fenced", "stale",
             "quar/unquar", "fallbacks", "puts acked"],
            rows,
        ):
            print(line)
        print(f"{len(seeds) - failed}/{len(seeds)} seeds passed "
              f"({periods} periods, asymmetric partition + failover + "
              "fail-slow)")
    elif args.chaos:
        periods = args.periods if args.periods is not None else 18
        for seed in seeds:
            try:
                report = run_coord_chaos(
                    seed, periods=periods,
                    rebalance_periods=args.rebalance_periods,
                    fallback_after=args.fallback_after,
                )
            except ConfigError as err:
                print(err, file=sys.stderr)
                return 2
            rows.append([
                str(seed),
                "PASS" if report.ok else "FAIL",
                str(report.fallbacks),
                str(report.rebalances),
                str(report.tokens_shifted),
                str(report.epochs_skipped),
                str(report.puts_acked),
                str(report.rebinds),
            ])
            payload["seeds"][str(seed)] = dataclasses.asdict(report)
            if not report.ok:
                failed += 1
                for violation in report.violations:
                    print(f"seed {seed}: {violation}", file=sys.stderr)
        for line in format_table(
            ["seed", "verdict", "fallbacks", "rebalances", "tokens shifted",
             "epochs skipped", "puts acked", "rebinds"],
            rows,
        ):
            print(line)
        print(f"{len(seeds) - failed}/{len(seeds)} seeds passed "
              f"({periods} periods, coordinator crash + drop storm)")
    else:
        for seed in seeds:
            comparison = run_skewed_comparison(
                seed,
                rebalance_periods=args.rebalance_periods,
                fallback_after=args.fallback_after,
            )
            comparison.pop("_cluster")
            static = comparison["static"]
            coordinated = comparison["coordinated"]
            conserved = not (coordinated["ledger_violations"]
                             or coordinated["split_violations"])
            ok = (comparison["worst_gain"] > 0 and conserved)
            rows.append([
                str(seed),
                f"{static['worst_entitled_attainment']:.3f}",
                f"{coordinated['worst_entitled_attainment']:.3f}",
                f"{comparison['worst_gain']:+.3f}",
                str(coordinated["rebalances"]),
                str(coordinated["tokens_shifted"]),
                "PASS" if conserved else "FAIL",
            ])
            payload["seeds"][str(seed)] = comparison
            if not ok:
                failed += 1
                for violation in (coordinated["ledger_violations"]
                                  + coordinated["split_violations"]):
                    print(f"seed {seed}: {violation}", file=sys.stderr)
        for line in format_table(
            ["seed", "static worst", "coordinated worst", "gain",
             "rebalances", "tokens shifted", "conservation"],
            rows,
        ):
            print(line)
        print(f"{len(seeds) - failed}/{len(seeds)} seeds improved the worst "
              "entitled client's attainment with clean conservation audits")
    payload["failed"] = failed
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.report}")
    return 1 if failed else 0


def _cmd_telemetry(args) -> int:
    from repro.common.types import AccessMode
    from repro.telemetry import (
        TelemetryConfig,
        attach_telemetry,
        format_stage_table,
        write_ledger_jsonl,
        write_metrics_jsonl,
        write_perfetto,
    )

    if args.sample < 0:
        print("--sample must be >= 0", file=sys.stderr)
        return 2

    if args.overhead_check:
        return _telemetry_overhead_check(args)

    if args.chaos_seed is not None:
        from repro.recovery import run_chaos

        report = run_chaos(
            args.chaos_seed, num_clients=args.clients, periods=args.periods,
            telemetry=TelemetryConfig(sample_every=args.sample),
            trace_path=args.trace,
        )
        totals = report.ledger_totals
        print(f"chaos seed {args.chaos_seed}: "
              f"{'PASS' if report.ok else 'FAIL'}  "
              f"failovers={report.failovers}  rejoins={report.rejoins}")
        print(f"token ledger: granted="
              f"{totals.get('granted_reservation', 0)}"
              f"+{totals.get('granted_pool', 0)} pool  "
              f"spent={totals.get('spent', 0)}  "
              f"yielded={totals.get('yielded', 0)}  "
              f"expired={totals.get('expired', 0)}  "
              f"accounts={totals.get('accounts', 0)}")
        for violation in report.violations:
            print(violation, file=sys.stderr)
        if args.trace:
            print(f"perfetto trace written to {args.trace}")
        return 0 if report.ok else 1

    scale = SimScale(factor=args.scale, interval_divisor=200)
    access = (AccessMode.ONE_SIDED if args.access == "one-sided"
              else AccessMode.TWO_SIDED)
    mode = _MODES[args.mode]
    if mode is QoSMode.BARE:
        demands = [_CAPACITY / args.clients * 1.5] * args.clients
        cluster = bare_cluster(demands=demands, scale=scale, access=access)
    else:
        # Stay under the per-client C_L admission cap for small counts.
        total = min(0.9 * _CAPACITY, args.clients * 350_000)
        reservations = reservation_set("uniform", total, args.clients)
        demands = paper_demands(reservations, _CAPACITY - total)
        cluster = qos_cluster(
            reservations=reservations, demands=demands, qos_mode=mode,
            scale=scale,
        )
    hub = attach_telemetry(cluster, TelemetryConfig(sample_every=args.sample))
    result = run_experiment(cluster, warmup_periods=args.warmup,
                            measure_periods=args.periods)

    for line in format_stage_table(hub.spans):
        print(line)
    store = hub.spans.export()
    print(f"spans: {store['recorded']} recorded "
          f"({store['started']} started, {store['dropped']} dropped, "
          f"sampling 1/{args.sample})  "
          f"total: {result.total_kiops():.0f} KIOPS")
    if args.trace:
        events = write_perfetto(args.trace, hub.spans, store)
        print(f"perfetto trace: {args.trace} ({events} events)")
    if args.metrics:
        rows = write_metrics_jsonl(args.metrics, hub.period_rows)
        print(f"metrics snapshots: {args.metrics} ({rows} periods)")
    if args.ledger is not None and hub.ledger is not None:
        for ctx in cluster.clients:
            if ctx.engine is not None:
                ctx.engine.ledger_flush()
        lines = write_ledger_jsonl(args.ledger, hub.ledger)
        print(f"token ledger: {args.ledger} ({lines} events)")
        violations = hub.ledger.check_conservation()
        for violation in violations:
            print(f"token ledger: {violation}", file=sys.stderr)
        if violations:
            return 1
    return 0


def _telemetry_overhead_check(args) -> int:
    import json

    from repro.telemetry import measure_overhead

    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    except FileNotFoundError:
        print(f"baseline file not found: {args.baseline}", file=sys.stderr)
        return 2
    bounds = baseline["bounds"]
    scenario = baseline["scenario"]
    rates = [None if r is None else int(r) for r in baseline["rates"]]
    rows = measure_overhead(
        rates=rates,
        num_clients=scenario["clients"],
        periods=scenario["periods"],
        scale_factor=scenario["scale"],
        repeats=scenario.get("repeats", 3),
    )
    table = [
        [row["sample"], f"{row['kiops']:.0f}", f"{row['cpu_seconds']:.3f}",
         f"{row['overhead'] * 100:+.1f}%", str(row["spans_recorded"])]
        for row in rows
    ]
    for line in format_table(
        ["sampling", "KIOPS", "cpu (s)", "overhead", "spans"], table
    ):
        print(line)
    # Throughput gate: the simulated KIOPS must be *identical* across
    # rates (measure_overhead raises otherwise) — stricter than the
    # issue's 3%/10% criteria, and fully deterministic.
    print(f"simulated throughput: {rows[0]['kiops']:.0f} KIOPS at every "
          "sampling rate (identical by construction)")
    failed = False
    for row in rows:
        bound = bounds.get(row["sample"])
        if bound is None:
            continue
        if row["overhead"] > bound:
            failed = True
            print(f"FAIL: {row['sample']} CPU overhead "
                  f"{row['overhead'] * 100:.1f}% exceeds bound "
                  f"{bound * 100:.0f}%", file=sys.stderr)
    if not failed:
        print("host CPU overhead within bounds "
              + ", ".join(f"{k}<={v * 100:.0f}%" for k, v in bounds.items()))
    return 1 if failed else 0


_FIGURES = [
    ("Table I", "bench_table1_config.py", "testbed configuration"),
    ("Fig. 6", "bench_fig06_client_throughput.py", "per-client saturation"),
    ("Fig. 7", "bench_fig07_scaling.py", "throughput vs active clients"),
    ("Fig. 8", "bench_fig08_demand_patterns.py", "demand x pattern matrix"),
    ("Fig. 9", "bench_fig09_haechi_qos.py", "Haechi vs bare (Exp 2A)"),
    ("Fig. 10", "bench_fig10_token_conversion.py", "conversion vs Basic"),
    ("Fig. 11", "bench_fig11_conversion_throughput.py", "totals ordering"),
    ("Fig. 12", "bench_fig12_reserved_capacity.py", "reserved-fraction sweep"),
    ("Fig. 13", "bench_fig13_request_patterns.py", "burst vs constant-rate"),
    ("Fig. 14", "bench_fig14_pattern_throughput.py", "pattern throughput"),
    ("Fig. 15", "bench_fig15_latency.py", "latency distributions"),
    ("Fig. 16", "bench_fig16_overestimation.py", "congestion onset"),
    ("Fig. 17", "bench_fig17_overestimation_client.py", "C1 under onset"),
    ("Fig. 18", "bench_fig18_underestimation.py", "congestion relief"),
    ("Fig. 19", "bench_fig19_underestimation_client.py", "C1 under relief"),
    ("ablation", "bench_ablation_batch.py", "token batch size B"),
    ("ablation", "bench_ablation_intervals.py", "tick granularity"),
    ("ablation", "bench_ablation_capacity.py", "Algorithm-1 parameters"),
    ("ablation", "bench_ablation_pacing.py", "completion-gated vs token-paced"),
    ("baseline", "bench_baseline_twosided_qos.py", "server-side QoS vs Haechi"),
    ("extension", "bench_ext_multinode.py", "multi-data-node Haechi"),
    ("extension", "bench_ext_limits.py", "limit (L_i) enforcement"),
    ("extension", "bench_ext_poisson.py", "QoS under Poisson arrivals"),
]


def _cmd_figure(args) -> int:
    from repro.common.errors import ConfigError
    from repro.cluster.presets import REGISTRY, get_preset

    if args.name == "--list" or args.name == "list":
        for line in format_table(
            ["preset", "regenerates"],
            [[name, REGISTRY[name].description] for name in sorted(REGISTRY)],
        ):
            print(line)
        return 0
    try:
        preset = get_preset(args.name)
    except ConfigError as err:
        print(err, file=sys.stderr)
        return 2
    summary = preset.run(quick=args.quick)
    print(summary["title"])
    for line in format_table(summary["header"], summary["rows"]):
        print(line)
    totals = summary.get("totals")
    if totals:
        print("totals: " + "  ".join(f"{k}={v}" for k, v in totals.items()))
    series = summary.get("series")
    if series:
        from repro.analysis import sparkline

        for label, values in series.items():
            print(f"{label:>8}: {sparkline(values)}")
    return 0


def _cmd_bench(args) -> int:
    from repro.cluster.runner import RunnerError, fig12_cells, run_cells

    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    distributions = (("uniform", "zipf") if args.distribution == "both"
                     else (args.distribution,))
    cells = fig12_cells(distributions=distributions, seed=args.seed)
    try:
        report = run_cells(cells, workers=args.workers, cache_dir=args.cache)
    except RunnerError as err:
        print(err, file=sys.stderr)
        return 1
    if args.json:
        print(report.merged_json())
        return 0
    rows = [
        [cell.params["distribution"], f"{cell.params['fraction']:.0%}",
         f"{result['total_kiops']:.0f}"]
        for cell, result in zip(report.cells, report.results)
    ]
    for line in format_table(["distribution", "reserved", "KIOPS"], rows):
        print(line)
    print(f"{len(cells)} cells in {report.wall_seconds:.2f}s "
          f"({args.workers} worker(s), cache: {report.cache_hits} hit(s) / "
          f"{report.cache_misses} miss(es))")
    return 0


def _cmd_hunt(args) -> int:
    from repro.common.errors import ConfigError
    from repro.hunt import HuntConfig, replay_file, run_hunt
    from repro.hunt.reproducer import write_reproducers

    if args.replay is not None:
        try:
            outcome = replay_file(args.replay)
        except (ConfigError, FileNotFoundError, json.JSONDecodeError) as err:
            print(err, file=sys.stderr)
            return 2
        if outcome.reproduced:
            print(f"{args.replay}: {outcome.kind!r} reproduced "
                  f"(kinds: {', '.join(outcome.kinds)})")
            return 0
        print(f"{args.replay}: {outcome.kind!r} did NOT reproduce "
              f"(replay kinds: {', '.join(outcome.kinds) or 'none'})",
              file=sys.stderr)
        return 1

    if args.budget < 1:
        print("--budget must be >= 1", file=sys.stderr)
        return 2
    config = HuntConfig(
        budget=args.budget, seed=args.seed, batch=args.batch,
        minimize=args.minimize, workers=args.workers,
        cache_dir=args.cache,
    )
    campaign = run_hunt(config, log=print)

    rows = []
    for finding in sorted(campaign.findings, key=lambda f: f.kind):
        spec = finding.minimized_spec or finding.spec
        rows.append([
            finding.kind, finding.oracle or "?", str(finding.found_at),
            str(finding.sightings), str(finding.minimize_steps),
            f"{spec.num_clients}c/{spec.periods}p/"
            f"{len(spec.faults)} fault(s)",
        ])
    if rows:
        for line in format_table(
            ["kind", "oracle", "found@", "seen", "dd-steps", "minimal"],
            rows,
        ):
            print(line)
    else:
        print("no oracle violations found")
    print("counters: " + "  ".join(
        f"{k}={v}" for k, v in sorted(campaign.counters.items())
    ))

    if args.report is not None:
        with open(args.report, "w") as fh:
            fh.write(campaign.to_json())
            fh.write("\n")
        print(f"report written to {args.report}")
    if args.reproducers is not None:
        import os

        os.makedirs(args.reproducers, exist_ok=True)
        paths = write_reproducers(args.reproducers, campaign)
        print(f"{len(paths)} reproducer(s) written to {args.reproducers}")
    if not campaign.ok:
        print("ERROR: finding(s) failed to re-reproduce during "
              "minimization (nondeterminism?)", file=sys.stderr)
        return 1
    return 0


def _cmd_scale(args) -> int:
    import time

    from repro.common.errors import ConfigError
    from repro.fluid.scenario import run_fluid_scale
    from repro.fluid.validate import run_equivalence

    started = time.perf_counter()
    try:
        report = run_fluid_scale(
            num_clients=args.clients,
            tenants=args.tenants,
            groups_per_tenant=args.groups_per_tenant,
            periods=args.periods,
            seed=args.seed,
            brownout=args.brownout,
            resize=args.resize,
        )
    except ConfigError as err:
        print(err, file=sys.stderr)
        return 2
    wall = time.perf_counter() - started

    problems = list(report["hierarchy_violations"])
    problems += list(report["ledger_conservation"])
    payload: dict = {"scale": report, "wall_seconds": round(wall, 3)}

    if not args.json:
        rows = []
        for name in sorted(report["tenant_rollup"]):
            entry = report["tenant_rollup"][name]
            attainment = entry["attainment"]
            rows.append([
                name,
                str(entry["clients"]),
                str(entry["reservation"]),
                str(entry["completed"]),
                "-" if attainment is None else f"{attainment:.3f}",
            ])
        for line in format_table(
            ["tenant", "clients", "reservation (tokens/T)",
             "completed", "attainment"],
            rows,
        ):
            print(line)
        print(f"{report['num_clients']} clients / {report['flows']} flows "
              f"across {report['tenants']} tenants, "
              f"{report['periods']} periods in {wall:.2f}s wall-clock  "
              f"(conversions={report['conversions']}, "
              f"faa_batches={report['faa_batches']}, "
              f"resize_ops={len(report['resize_ops'])})")
        for problem in problems:
            print(problem, file=sys.stderr)

    failed = bool(problems)
    if args.validate:
        equivalence = run_equivalence(args.seed)
        payload["equivalence"] = equivalence
        if not args.json:
            print(f"equivalence (seed {args.seed}): "
                  f"{'PASS' if equivalence['ok'] else 'FAIL'}  "
                  f"max attainment error {equivalence['max_error']:.4f} "
                  f"(tier {equivalence['tolerance_tier']:.2f}), "
                  f"{len(equivalence['who_wins_reversals'])} who-wins "
                  f"reversal(s)")
            for pair in equivalence["who_wins_reversals"]:
                print(f"who-wins reversal: {pair}", file=sys.stderr)
        failed = failed or not equivalence["ok"]

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        if not args.json:
            print(f"report written to {args.report}")
    return 1 if failed else 0


def _cmd_figures(_args) -> int:
    for line in format_table(["artifact", "benchmark", "regenerates"],
                             _FIGURES):
        print(line)
    print("\nrun them all:  pytest benchmarks/ --benchmark-only")
    return 0


def _cmd_fabric(args) -> int:
    import json as _json

    from repro.cluster.fabric_scenarios import run_incast
    from repro.common.errors import ConfigError

    rows = []
    runs = {}
    try:
        for label, cc in (("DCQCN on", True), ("DCQCN off", False)):
            r = run_incast(args.seed, cc_enabled=cc,
                           ops_per_client=args.ops)
            runs["cc_on" if cc else "cc_off"] = r
            port = r["cc"]["ports"]["server"]
            rows.append([
                label, "yes" if r["all_finished"] else "NO",
                round(r["makespan"] * 1e3, 3) if r["makespan"] else "-",
                port["ecn_marks"], r["cc"]["qps"]["cnps_sent"],
                port["pfc_pause_events"],
            ])
    except ConfigError as err:
        print(err, file=sys.stderr)
        return 2
    print(f"{runs['cc_on']['num_clients']}:1 incast, 4 KB READs, "
          f"{args.ops} ops/client, seed {args.seed}")
    for line in format_table(
        ["mode", "finished", "makespan ms", "ECN marks", "CNPs",
         "PFC pauses"], rows,
    ):
        print(line)

    ok = all(r["all_finished"] for r in runs.values())
    on = runs["cc_on"]
    if on["cc"]["qps"]["cnps_sent"] == 0:
        print("FAIL: DCQCN run produced no CNPs (no rate feedback)",
              file=sys.stderr)
        ok = False
    if runs["cc_off"]["cc"]["qps"]["cnps_sent"] != 0:
        print("FAIL: CC-disabled run generated CNPs", file=sys.stderr)
        ok = False

    digest_report = None
    if args.digests:
        import pathlib

        from repro.cluster.determinism import FABRIC_SEEDS, fabric_digest

        reference_path = pathlib.Path(
            "benchmarks/results/determinism_hashes.json"
        )
        reference = _json.loads(reference_path.read_text())["fabric"]
        digest_report = {}
        for seed in FABRIC_SEEDS:
            digest = fabric_digest(seed)
            expected = reference[str(seed)]
            matched = digest["combined"] == expected["combined"]
            digest_report[str(seed)] = {
                "combined": digest["combined"], "matched": matched,
            }
            status = "ok" if matched else "MISMATCH"
            print(f"fabric digest seed {seed}: {status} "
                  f"({digest['combined'][:16]}...)")
            ok = ok and matched

    if args.report:
        payload = {"seed": args.seed, "ops": args.ops, "ok": ok,
                   "incast": runs, "digests": digest_report}
        with open(args.report, "w") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.report}")
    return 0 if ok else 1


def _cmd_policy(args) -> int:
    import dataclasses
    import json as _json

    from repro.common.errors import ConfigError
    from repro.policy import (
        SUPPORTED_SCHEMA_VERSIONS,
        QoSPolicy,
        list_builtin,
        load_policy,
    )

    try:
        if args.policy_command == "list":
            rows = []
            for name in list_builtin():
                doc = load_policy(name)
                rows.append([
                    name, doc.name, str(doc.version),
                    str(doc.schema_version), str(len(doc.classes)),
                    str(doc.num_clients()) if doc.classes else "-",
                ])
            for line in format_table(
                ["file", "policy", "revision", "schema", "classes",
                 "clients"], rows,
            ):
                print(line)
            return 0

        if args.policy_command == "show":
            doc = load_policy(args.name)
            if args.schema is not None:
                doc = doc.downconvert(args.schema)
            print(doc.to_json(indent=2))
            return 0

        if args.policy_command == "diff":
            old = load_policy(args.old)
            new = load_policy(args.new)
            lines = old.diff(new)
            if not lines:
                print("documents are identical")
                return 0
            for line in lines:
                print(line)
            return 0

        if args.policy_command == "validate":
            names = args.names or list_builtin()
            if not names:
                print("no policy documents to validate", file=sys.stderr)
                return 2
            rows = []
            for name in names:
                doc = load_policy(name)
                # The committed form must survive a canonical
                # round-trip: what a consumer parses is what the
                # author validated.
                if QoSPolicy.from_json(doc.to_json()) != doc:
                    raise ConfigError(
                        f"{name}: document does not round-trip through "
                        "its own canonical JSON"
                    )
                floors = sorted(
                    v for v in SUPPORTED_SCHEMA_VERSIONS
                    if v <= doc.schema_version
                )
                downconverts = []
                for target in floors[:-1]:
                    try:
                        doc.downconvert(target)
                        downconverts.append(f"v{target}:ok")
                    except ConfigError:
                        downconverts.append(f"v{target}:rejected")
                rows.append([
                    name, str(doc.version), str(doc.schema_version),
                    ", ".join(downconverts) or "-", "PASS",
                ])
            for line in format_table(
                ["document", "revision", "schema", "down-convert",
                 "verdict"], rows,
            ):
                print(line)
            print(f"{len(rows)} document(s) validated")
            return 0
    except ConfigError as err:
        print(err, file=sys.stderr)
        return 2

    # apply: the policy-flip failover chaos scenario(s).
    from repro.policy.chaos import DEFAULT_SEEDS, run_policy_chaos

    seeds = args.seeds if args.seeds else list(DEFAULT_SEEDS)
    payload: dict = {"mode": "policy-flip-chaos", "seeds": {}}
    rows = []
    failed = 0
    try:
        for seed in seeds:
            report = run_policy_chaos(seed, periods=args.periods)
            rows.append([
                str(seed),
                "PASS" if report.ok else "FAIL",
                str(report.flip_epoch),
                str(report.takeover_epoch),
                str(report.policy_applies),
                str(report.policy_fenced),
                str(report.policy_stale_rejected),
                str(report.puts_acked),
            ])
            payload["seeds"][str(seed)] = dataclasses.asdict(report)
            if not report.ok:
                failed += 1
                for violation in report.violations:
                    print(f"seed {seed}: {violation}", file=sys.stderr)
    except ConfigError as err:
        print(err, file=sys.stderr)
        return 2
    for line in format_table(
        ["seed", "verdict", "flip epoch", "takeover epoch", "applies",
         "fenced", "stale", "puts acked"], rows,
    ):
        print(line)
    print(f"{len(seeds) - failed}/{len(seeds)} seeds hot-swapped the "
          f"policy mid-failover with clean conservation audits "
          f"({args.periods} periods)")

    ok = failed == 0
    digest_report = None
    if args.digests:
        import pathlib

        from repro.cluster.determinism import POLICY_SEEDS, policy_digest

        reference_path = pathlib.Path(
            "benchmarks/results/determinism_hashes.json"
        )
        reference = _json.loads(reference_path.read_text())["policy"]
        digest_report = {}
        for seed in POLICY_SEEDS:
            digest = policy_digest(seed)
            expected = reference[str(seed)]
            matched = digest["combined"] == expected["combined"]
            digest_report[str(seed)] = {
                "combined": digest["combined"], "matched": matched,
            }
            status = "ok" if matched else "MISMATCH"
            print(f"policy digest seed {seed}: {status} "
                  f"({digest['combined'][:16]}...)")
            ok = ok and matched
    payload["failed"] = failed
    payload["digests"] = digest_report
    if args.report:
        with open(args.report, "w") as fh:
            _json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.report}")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "globalqos":
        return _cmd_globalqos(args)
    if args.command == "telemetry":
        return _cmd_telemetry(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "hunt":
        return _cmd_hunt(args)
    if args.command == "scale":
        return _cmd_scale(args)
    if args.command == "fabric":
        return _cmd_fabric(args)
    if args.command == "policy":
        return _cmd_policy(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
