"""Haechi control-plane messages and the shared control-memory layout.

Everything latency-critical is one-sided: the global token pool is a
64-bit word clients FAA, and client reports are single 64-bit one-sided
WRITEs into per-client slots.  Only the once-per-period period-start
dispatch and the once-per-period report-request signal use two-sided
SENDs, exactly as in the paper (Figs. 4 and 5).
"""

from __future__ import annotations

import dataclasses

# Wire-size accounting for control SENDs.
CONTROL_MESSAGE_SIZE = 64


@dataclasses.dataclass(frozen=True)
class ControlLayout:
    """Where a client's engine finds the shared control words.

    Handed to the engine at connection time (step T1).  ``pool_addr``
    is shared by all clients; the two report addresses are per-client.
    """

    rkey: int
    pool_addr: int  # the global token pool word (signed, FAA target)
    report_live_addr: int  # periodic report word (packed residual|completed)
    report_final_addr: int  # end-of-period statistics word


@dataclasses.dataclass(frozen=True)
class PeriodStart:
    """Step T1: reservation-token dispatch, also signals the new period.

    ``generation`` stamps the monitor's control-word epoch: it bumps
    when the token words are re-initialized (monitor restart after a
    crash window), so a client seeing a new generation knows any pool
    tokens it fetched before the stamp are claims against dead memory
    and must be discarded.
    """

    period_id: int
    tokens: int  # R_i for this client, in (dilated) tokens
    period_end_time: float  # absolute sim time the period ends
    generation: int = 0


@dataclasses.dataclass(frozen=True)
class ReportRequest:
    """Step S3: the monitor asks the client to begin periodic reporting."""

    period_id: int


@dataclasses.dataclass(frozen=True)
class ReservationAlert:
    """Algorithm 1's advisory: the client keeps under-using its reservation."""

    period_id: int
    consecutive_underuse: int


@dataclasses.dataclass(frozen=True)
class RejoinRequest:
    """Failover handshake: a client asks a (replica's) monitor to adopt it.

    Sent two-sided after the client's primary is declared dead.
    ``reservation`` is the client's original grant; the monitor
    reconciles it against its own remaining capacity and may clamp.
    """

    client_id: int
    reservation: int


@dataclasses.dataclass(frozen=True)
class RejoinResponse:
    """Reply to :class:`RejoinRequest`: the adopted client's new world.

    Carries the fresh control-memory layout, the (possibly clamped)
    reservation, an immediate pro-rated token grant for the remainder
    of the current period — so I/O resumes before the next boundary —
    and the monitor's period/generation coordinates.
    """

    client_id: int
    ok: bool
    reservation: int  # tokens/period after reconciliation
    tokens_now: int  # immediate grant for the rest of this period
    rkey: int = 0
    pool_addr: int = 0
    report_live_addr: int = 0
    report_final_addr: int = 0
    period_id: int = 0
    period_end_time: float = 0.0
    generation: int = 0
