"""Haechi control-plane messages and the shared control-memory layout.

Everything latency-critical is one-sided: the global token pool is a
64-bit word clients FAA, and client reports are single 64-bit one-sided
WRITEs into per-client slots.  Only the once-per-period period-start
dispatch and the once-per-period report-request signal use two-sided
SENDs, exactly as in the paper (Figs. 4 and 5).
"""

from __future__ import annotations

import dataclasses

# Wire-size accounting for control SENDs.
CONTROL_MESSAGE_SIZE = 64


@dataclasses.dataclass(frozen=True)
class ControlLayout:
    """Where a client's engine finds the shared control words.

    Handed to the engine at connection time (step T1).  ``pool_addr``
    is shared by all clients; the two report addresses are per-client.
    """

    rkey: int
    pool_addr: int  # the global token pool word (signed, FAA target)
    report_live_addr: int  # periodic report word (packed residual|completed)
    report_final_addr: int  # end-of-period statistics word


@dataclasses.dataclass(frozen=True)
class PeriodStart:
    """Step T1: reservation-token dispatch, also signals the new period."""

    period_id: int
    tokens: int  # R_i for this client, in (dilated) tokens
    period_end_time: float  # absolute sim time the period ends


@dataclasses.dataclass(frozen=True)
class ReportRequest:
    """Step S3: the monitor asks the client to begin periodic reporting."""

    period_id: int


@dataclasses.dataclass(frozen=True)
class ReservationAlert:
    """Algorithm 1's advisory: the client keeps under-using its reservation."""

    period_id: int
    consecutive_underuse: int
