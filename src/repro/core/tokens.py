"""Client-side token accounting (pure logic, no I/O).

Separated from the engine so the invariants — the entitlement bound
``X(t) = R_i - rho_i(t)``, the clamp ``xi_res <= ceil(X)``, and batched
global-token arithmetic — are directly unit- and property-testable.
"""

from __future__ import annotations

import math

from repro.common.errors import QoSError


class ClientTokenState:
    """Token state of one client within one QoS period.

    ``xi_res``
        Remaining reservation tokens; consumed one per I/O.
    ``x_bound``
        The decaying entitlement bound X.  The management thread calls
        :meth:`decay` every tick; reservation tokens above ``ceil(X)``
        are yielded back (they show up as a smaller reported residual,
        which the monitor's conversion turns into global tokens).
    ``local_global``
        Global tokens fetched in a batch and not yet spent.
    """

    def __init__(self, reservation: int, period: float):
        if reservation < 0:
            raise QoSError(f"reservation must be >= 0, got {reservation}")
        if period <= 0:
            raise QoSError(f"period must be positive, got {period}")
        self.reservation = reservation
        self.period = period
        self.rate = reservation / period  # r_i
        self.xi_res = 0
        self.x_bound = 0.0
        self.local_global = 0
        self.yielded_tokens = 0  # reservation tokens given up (telemetry)

    def start_period(self, tokens: int) -> None:
        """Begin a period: fresh tokens *replace* any leftover state."""
        if tokens < 0:
            raise QoSError(f"token grant must be >= 0, got {tokens}")
        self.xi_res = tokens
        self.x_bound = float(tokens)
        self.local_global = 0
        self.yielded_tokens = 0

    # ------------------------------------------------------------------
    def decay(self, dt: float) -> int:
        """One management tick: reduce X by ``r_i * dt``, clamp ``xi_res``.

        Returns how many reservation tokens were yielded this tick.
        """
        if dt < 0:
            raise QoSError(f"negative decay interval: {dt}")
        self.x_bound = max(0.0, self.x_bound - self.rate * dt)
        # The epsilon absorbs float accumulation across ticks so that an
        # exact bound (e.g. X = 20 after 600 ticks) does not ceil to 21.
        bound = math.ceil(self.x_bound - 1e-9)
        if self.xi_res > bound:
            yielded = self.xi_res - bound
            self.xi_res = bound
            self.yielded_tokens += yielded
            return yielded
        return 0

    # ------------------------------------------------------------------
    def try_consume(self) -> bool:
        """Take one token (reservation first, then local global)."""
        if self.xi_res > 0:
            self.xi_res -= 1
            return True
        if self.local_global > 0:
            self.local_global -= 1
            return True
        return False

    @property
    def needs_global(self) -> bool:
        """True when the next I/O must be backed by the global pool."""
        return self.xi_res <= 0 and self.local_global <= 0

    def grant_from_pool(self, prior_pool_value: int, batch: int) -> int:
        """Account a batched FAA result.

        ``prior_pool_value`` is the (signed) pool value the FAA
        returned; the client keeps ``min(batch, max(prior, 0))`` tokens
        — a non-positive prior value means the unreserved capacity was
        already consumed and the client got nothing.
        """
        if batch < 1:
            raise QoSError(f"batch must be >= 1, got {batch}")
        granted = min(batch, max(prior_pool_value, 0))
        self.local_global += granted
        return granted

    @property
    def residual(self) -> int:
        """The residual reservation the client reports to the monitor."""
        return max(0, self.xi_res)
