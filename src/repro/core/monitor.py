"""The data-node QoS monitor (paper Sec. II-E, Fig. 5).

Once per period the monitor dispatches reservation tokens (two-sided
SEND, step T1) and initializes the global token pool word.  During the
period it wakes every check interval: when it first observes the pool
below its initial value — meaning some client exhausted its reservation
(step S2) — it signals all clients to begin reporting (step S3), and
from then on converts unused reservations into global tokens every
check interval (step T2):

    xi_global = max(Omega * (T - t) / T - L, 0)

where ``L`` is the sum of the clients' last-reported residual
reservations.  ``Omega * (T - t) / T`` is the capacity remaining in the
period, so the overwrite maintains the paper's invariant that all
outstanding tokens (global + reservation) never exceed what the server
can still absorb — and makes the pool self-correcting against the
negative excursions caused by batched FAAs on an empty pool.

Just before the boundary clients write final statistics; the monitor
feeds their sum to Algorithm 1 (step T3) to estimate the next period's
capacity.

*Basic Haechi* (the paper's ablation in Experiment 2B) is this class
with ``config.token_conversion = False``: reporting and estimation
still run, but unused reservation tokens are simply wasted.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import QoSError, QPError
from repro.core.admission import AdmissionController
from repro.core.capacity import AdaptiveCapacityEstimator
from repro.core.config import HaechiConfig
from repro.core.protocol import (
    CONTROL_MESSAGE_SIZE,
    ControlLayout,
    PeriodStart,
    ReportRequest,
    ReservationAlert,
)
from repro.common.types import OpType
from repro.rdma.atomics import to_signed64, to_unsigned64, unpack_report
from repro.rdma.memory import Permissions
from repro.rdma.node import Host
from repro.rdma.verbs import WorkRequest
from repro.sim.trace import NULL_TRACER

_POOL_OFFSET = 0
_CLIENT_STRIDE = 16  # live word + final word per client


def _stale_sentinel(reservation: int) -> int:
    """The marker written to a client's final-report word at period begin.

    ``completed = 0xFFFFFFFF`` is unreachable for a real report (a period
    never completes 2^32 - 1 I/Os), so the word still holding this value
    at period end proves the client wrote nothing all period — a liveness
    signal that works even for clients with reservation 0.  Any genuine
    report, including an idle client's "no progress" final write,
    replaces it.
    """
    return (reservation << 32) | 0xFFFFFFFF


class _ClientSlot:
    """Monitor-side record for one admitted client."""

    __slots__ = ("client_id", "reservation", "qp", "layout", "underuse_streak",
                 "lease_streak")

    def __init__(self, client_id: int, reservation: int, qp, layout: ControlLayout):
        self.client_id = client_id
        self.reservation = reservation
        self.qp = qp
        self.layout = layout
        self.underuse_streak = 0
        self.lease_streak = 0  # consecutive periods with a stale final word


class QoSMonitor:
    """Server-side token management and capacity estimation."""

    def __init__(
        self,
        host: Host,
        config: HaechiConfig,
        estimator: AdaptiveCapacityEstimator,
        admission: Optional[AdmissionController] = None,
        max_clients: int = 64,
        tracer=NULL_TRACER,
    ):
        self.host = host
        self.sim = host.sim
        self.config = config
        self.estimator = estimator
        self.admission = admission
        self.max_clients = max_clients
        self.tracer = tracer
        self._clients: Dict[int, _ClientSlot] = {}

        region_size = 8 + max_clients * _CLIENT_STRIDE
        base = host.memory.allocate(region_size, align=8)
        self.control_region = host.memory.register(
            base, region_size, Permissions.all()
        )
        self.pool_addr = base + _POOL_OFFSET

        self.period_id = 0
        self._period_end = 0.0
        self._pool_init = 0
        self._reporting_triggered = False
        self._running = False
        self._next_slot_index = 0  # monotonic: retired slots never reused

        # telemetry for the benches
        self.pool_history: List[tuple] = []  # (time, pool value at check)
        self.conversions = 0
        self.period_records: List[dict] = []
        # Definition 2's runtime form: clients whose residual reservation
        # can no longer be completed at the single-client rate C_L.
        # Detected from live reports (diagnostic only — the paper's
        # Experiment 1C/Set 3 starvation effect made observable).
        self.local_violations: List[dict] = []
        self._violated_this_period: set = set()
        # robustness telemetry (see docs/FAULTS.md)
        self.stale_reports = 0
        self.clamped_reports = 0
        self.sends_failed = 0
        self.evictions: List[dict] = []

    # ------------------------------------------------------------------
    # Client admission / wiring (step T1 prerequisites)
    # ------------------------------------------------------------------
    def add_client(self, client_id: int, reservation: int, qp) -> ControlLayout:
        """Admit a client and assign its control-memory slots.

        ``qp`` is the monitor's QP *towards* the client, used for the
        per-period control SENDs.  Returns the layout the client's
        engine needs for its one-sided control traffic.
        """
        if client_id in self._clients:
            raise QoSError(f"client {client_id} already registered")
        if self._next_slot_index >= self.max_clients:
            raise QoSError(f"monitor supports at most {self.max_clients} clients")
        if self.admission is not None:
            self.admission.admit(client_id, reservation)
        index = self._next_slot_index
        self._next_slot_index += 1
        base = self.control_region.addr + 8 + index * _CLIENT_STRIDE
        layout = ControlLayout(
            rkey=self.control_region.rkey,
            pool_addr=self.pool_addr,
            report_live_addr=base,
            report_final_addr=base + 8,
        )
        self._clients[client_id] = _ClientSlot(client_id, reservation, qp, layout)
        return layout

    def remove_client(self, client_id: int) -> None:
        """Release a departing client's reservation.

        Effective from the next period start: the freed tokens flow
        into the global pool (and the admission controller's headroom).
        The client's control slots are retired, not reused, so a
        straggling report cannot corrupt another client's accounting.
        """
        slot = self._clients.pop(client_id, None)
        if slot is None:
            raise QoSError(f"client {client_id} is not registered")
        if self.admission is not None:
            self.admission.release(client_id)

    @property
    def total_reserved(self) -> int:
        """Sum of admitted reservations (tokens/period)."""
        return sum(slot.reservation for slot in self._clients.values())

    # ------------------------------------------------------------------
    # Period machinery
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin driving QoS periods (call once, after wiring clients)."""
        if self._running:
            raise QoSError("monitor already started")
        self._running = True
        self.sim.process(self._run())

    def _run(self):
        config = self.config
        while True:
            self._begin_period()
            remaining = self._period_end - self.sim.now
            while remaining > config.check_interval:
                yield self.sim.timeout(config.check_interval)
                self._check_interval()
                remaining = self._period_end - self.sim.now
            if remaining > 0:
                yield self.sim.timeout(remaining)
            self._end_period()

    def _begin_period(self) -> None:
        self.period_id += 1
        self._period_end = self.sim.now + self.config.period
        self._reporting_triggered = False
        self._violated_this_period.clear()
        omega = self.estimator.current
        self._pool_init = max(0, omega - self.total_reserved)
        self._write_pool(self._pool_init)
        self.tracer.emit("monitor", "period_begin", period=self.period_id,
                         estimate=omega, pool=self._pool_init)
        memory = self.host.memory.backing
        for slot in self._clients.values():
            # Reset the live report to "full residual, nothing done" so a
            # conversion before the first report stays conservative.
            memory.write_u64(
                slot.layout.report_live_addr,
                (slot.reservation << 32),
            )
            # The final word starts at the stale sentinel; if it is still
            # there at period end the client made no contact all period
            # (liveness lease, _end_period).
            memory.write_u64(
                slot.layout.report_final_addr,
                _stale_sentinel(slot.reservation),
            )
            self._send(slot, PeriodStart(
                period_id=self.period_id,
                tokens=slot.reservation,
                period_end_time=self._period_end,
            ))

    def _check_interval(self) -> None:
        # Step S1: probe the pool.  The monitor runs on the data node so
        # this is a local read (the paper uses a loopback CAS).
        pool = self._read_pool()
        self.pool_history.append((self.sim.now, pool))
        if not self._reporting_triggered:
            if pool < self._pool_init:
                self._reporting_triggered = True
                self.tracer.emit("monitor", "reporting_triggered",
                                 period=self.period_id, pool=pool)
                for slot in self._clients.values():
                    self._send(slot, ReportRequest(period_id=self.period_id))
            return
        self._check_local_violations()
        if not self.config.token_conversion:
            return
        # Step T2: token conversion from the last reported residuals.
        residual_sum = 0
        memory = self.host.memory.backing
        omega = self.estimator.current
        # A residual beyond the whole capacity estimate (+ one FAA batch
        # of slack for in-flight grants) can only be a corrupted word;
        # taking it at face value would zero the pool for the rest of
        # the period.
        residual_bound = omega + self.config.batch_size
        for slot in self._clients.values():
            residual, _completed = unpack_report(
                memory.read_u64(slot.layout.report_live_addr)
            )
            residual_sum += self._clamp(
                residual, residual_bound, "residual", slot.client_id
            )
        remaining = max(0.0, self._period_end - self.sim.now)
        new_pool = max(
            int(omega * remaining / self.config.period) - residual_sum, 0
        )
        self._write_pool(new_pool)
        self.conversions += 1
        self.tracer.emit("monitor", "conversion", period=self.period_id,
                         residual_sum=residual_sum, pool=new_pool)

    def _end_period(self) -> None:
        memory = self.host.memory.backing
        total_completed = 0
        per_client = {}
        lease = self.config.lease_periods
        # A single client cannot complete more than the whole node's
        # capacity; 2x the estimate (+ batch slack) leaves the estimator
        # room to discover under-estimation while rejecting garbage.
        completed_bound = 2 * self.estimator.current + self.config.batch_size
        expired = []
        for slot in self._clients.values():
            word = memory.read_u64(slot.layout.report_final_addr)
            if word == _stale_sentinel(slot.reservation):
                # No write all period: the client is unreachable or dead.
                slot.lease_streak += 1
                self.stale_reports += 1
                self.tracer.emit("monitor", "stale_report",
                                 period=self.period_id, client=slot.client_id,
                                 streak=slot.lease_streak)
                if lease and slot.lease_streak >= lease:
                    expired.append(slot)
                completed = 0
            else:
                slot.lease_streak = 0
                _residual, completed = unpack_report(word)
                completed = self._clamp(
                    completed, completed_bound, "completed", slot.client_id
                )
            total_completed += completed
            per_client[slot.client_id] = completed
            self._track_underuse(slot, completed)
        for slot in expired:
            self.remove_client(slot.client_id)
            self.evictions.append({
                "period": self.period_id,
                "client": slot.client_id,
                "reservation": slot.reservation,
                "time": self.sim.now,
            })
            self.tracer.emit("monitor", "client_evicted",
                             period=self.period_id, client=slot.client_id,
                             reservation=slot.reservation)
        self.period_records.append(
            {
                "period": self.period_id,
                "estimate": self.estimator.current,
                "completed": total_completed,
                "per_client": per_client,
                "reporting_triggered": self._reporting_triggered,
            }
        )
        self.estimator.update(total_completed)
        self.tracer.emit("monitor", "estimate", period=self.period_id,
                         completed=total_completed,
                         next_estimate=self.estimator.current)

    def _check_local_violations(self) -> None:
        """Definition 2 at runtime: flag clients whose outstanding
        reservation exceeds what C_L can deliver in the rest of the
        period (requires admission control for the C_L value)."""
        if self.admission is None:
            return
        local_rate = self.admission.local_capacity / self.config.period
        remaining = max(0.0, self._period_end - self.sim.now)
        memory = self.host.memory.backing
        for slot in self._clients.values():
            if slot.client_id in self._violated_this_period:
                continue
            _residual, completed = unpack_report(
                memory.read_u64(slot.layout.report_live_addr)
            )
            outstanding = max(0, slot.reservation - completed)
            if outstanding > remaining * local_rate:
                self._violated_this_period.add(slot.client_id)
                self.local_violations.append({
                    "period": self.period_id,
                    "client": slot.client_id,
                    "time": self.sim.now,
                    "outstanding": outstanding,
                })

    def _track_underuse(self, slot: _ClientSlot, completed: int) -> None:
        if completed < slot.reservation:
            slot.underuse_streak += 1
            if slot.underuse_streak >= self.config.underuse_alert_threshold:
                self._send(slot, ReservationAlert(
                    period_id=self.period_id,
                    consecutive_underuse=slot.underuse_streak,
                ))
        else:
            slot.underuse_streak = 0

    def _clamp(self, value: int, bound: int, field: str, client_id: int) -> int:
        """Reject an out-of-range report word (bit corruption, stale
        garbage from a crashed client) by clamping it to ``bound``."""
        if value <= bound:
            return value
        self.clamped_reports += 1
        self.tracer.emit("monitor", "report_clamped", period=self.period_id,
                         client=client_id, field=field, value=value,
                         bound=bound)
        return bound

    # ------------------------------------------------------------------
    def _read_pool(self) -> int:
        return to_signed64(self.host.memory.backing.read_u64(self.pool_addr))

    def _write_pool(self, value: int) -> None:
        self.host.memory.backing.write_u64(self.pool_addr, to_unsigned64(value))

    def _send(self, slot: _ClientSlot, message) -> None:
        wr = WorkRequest(
            opcode=OpType.SEND,
            payload=message,
            size=CONTROL_MESSAGE_SIZE,
            is_response=True,  # offloaded control path, not a client request
            control=True,
        )
        try:
            slot.qp.post_send(wr)
        except QPError:
            # Dead connection: the lease machinery will notice the
            # client's silence; losing the SEND itself is survivable.
            self.sends_failed += 1
