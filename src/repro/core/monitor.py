"""The data-node QoS monitor (paper Sec. II-E, Fig. 5).

Once per period the monitor dispatches reservation tokens (two-sided
SEND, step T1) and initializes the global token pool word.  During the
period it wakes every check interval: when it first observes the pool
below its initial value — meaning some client exhausted its reservation
(step S2) — it signals all clients to begin reporting (step S3), and
from then on converts unused reservations into global tokens every
check interval (step T2):

    xi_global = max(Omega * (T - t) / T - L, 0)

where ``L`` is the sum of the clients' last-reported residual
reservations.  ``Omega * (T - t) / T`` is the capacity remaining in the
period, so the overwrite maintains the paper's invariant that all
outstanding tokens (global + reservation) never exceed what the server
can still absorb — and makes the pool self-correcting against the
negative excursions caused by batched FAAs on an empty pool.

Just before the boundary clients write final statistics; the monitor
feeds their sum to Algorithm 1 (step T3) to estimate the next period's
capacity.

*Basic Haechi* (the paper's ablation in Experiment 2B) is this class
with ``config.token_conversion = False``: reporting and estimation
still run, but unused reservation tokens are simply wasted.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import QoSError, QPError
from repro.core.admission import AdmissionController
from repro.core.capacity import AdaptiveCapacityEstimator
from repro.core.config import HaechiConfig
from repro.core.protocol import (
    CONTROL_MESSAGE_SIZE,
    ControlLayout,
    PeriodStart,
    RejoinRequest,
    RejoinResponse,
    ReportRequest,
    ReservationAlert,
)
from repro.common.types import OpType
from repro.rdma.atomics import to_signed64, to_unsigned64, unpack_report
from repro.rdma.memory import Permissions
from repro.rdma.node import Host
from repro.rdma.verbs import WorkRequest
from repro.sim.trace import NULL_TRACER

_POOL_OFFSET = 0
_CLIENT_STRIDE = 16  # live word + final word per client


def _stale_sentinel(reservation: int) -> int:
    """The marker written to a client's final-report word at period begin.

    ``completed = 0xFFFFFFFF`` is unreachable for a real report (a period
    never completes 2^32 - 1 I/Os), so the word still holding this value
    at period end proves the client wrote nothing all period — a liveness
    signal that works even for clients with reservation 0.  Any genuine
    report, including an idle client's "no progress" final write,
    replaces it.
    """
    return (reservation << 32) | 0xFFFFFFFF


class _ClientSlot:
    """Monitor-side record for one admitted client."""

    __slots__ = ("client_id", "reservation", "qp", "layout", "index",
                 "underuse_streak", "lease_streak")

    def __init__(self, client_id: int, reservation: int, qp,
                 layout: ControlLayout, index: int):
        self.client_id = client_id
        self.reservation = reservation
        self.qp = qp
        self.layout = layout
        self.index = index
        self.underuse_streak = 0
        self.lease_streak = 0  # consecutive periods with a stale final word


class QoSMonitor:
    """Server-side token management and capacity estimation."""

    def __init__(
        self,
        host: Host,
        config: HaechiConfig,
        estimator: AdaptiveCapacityEstimator,
        admission: Optional[AdmissionController] = None,
        max_clients: int = 64,
        tracer=NULL_TRACER,
    ):
        self.host = host
        self.sim = host.sim
        self.config = config
        self.estimator = estimator
        self.admission = admission
        self.max_clients = max_clients
        self.tracer = tracer
        self._clients: Dict[int, _ClientSlot] = {}

        region_size = 8 + max_clients * _CLIENT_STRIDE
        base = host.memory.allocate(region_size, align=8)
        self.control_region = host.memory.register(
            base, region_size, Permissions.all()
        )
        self.pool_addr = base + _POOL_OFFSET

        self.period_id = 0
        self._period_end = 0.0
        self._pool_init = 0
        self._reporting_triggered = False
        self._running = False
        self._next_slot_index = 0  # monotonic: retired slots never reused
        # ...except by the same client rejoining after eviction, once
        # the fresh-slot supply is exhausted (see rejoin_client).
        self._retired_slots: Dict[int, int] = {}  # client_id -> old index
        # Control-word epoch: bumps whenever the token words are
        # re-initialized (node restart), stamped into every PeriodStart.
        self.generation = 1

        # telemetry for the benches
        self.pool_history: List[tuple] = []  # (time, pool value at check)
        self.conversions = 0
        self.period_records: List[dict] = []
        # Definition 2's runtime form: clients whose residual reservation
        # can no longer be completed at the single-client rate C_L.
        # Detected from live reports (diagnostic only — the paper's
        # Experiment 1C/Set 3 starvation effect made observable).
        self.local_violations: List[dict] = []
        self._violated_this_period: set = set()
        # robustness telemetry (see docs/FAULTS.md)
        self.stale_reports = 0
        self.clamped_reports = 0
        self.sends_failed = 0
        self.evictions: List[dict] = []
        # recovery telemetry (see docs/RECOVERY.md)
        self.rejoins: List[dict] = []
        self.rejoin_clamped = 0
        self.reinitializations = 0
        # global-coordinator telemetry (see docs/GLOBALQOS.md); exposed
        # through the node agent's metrics_items, not this class's, so
        # coordinator-free runs keep their metric streams byte-stable.
        self.rebalances: List[dict] = []
        self.rebalance_clamped = 0
        # Hierarchical tenancy (see docs/SCALE.md): a bound hierarchy
        # installs a guard that caps resizes at the client's group
        # ceiling.  Plain attributes, surfaced only through the tenancy
        # facade block, so unbound runs keep byte-stable metric streams.
        self.reservation_guard = None
        self.hierarchy_clamped = 0

    # ------------------------------------------------------------------
    # Client admission / wiring (step T1 prerequisites)
    # ------------------------------------------------------------------
    def add_client(self, client_id: int, reservation: int, qp) -> ControlLayout:
        """Admit a client and assign its control-memory slots.

        ``qp`` is the monitor's QP *towards* the client, used for the
        per-period control SENDs.  Returns the layout the client's
        engine needs for its one-sided control traffic.
        """
        if client_id in self._clients:
            raise QoSError(f"client {client_id} already registered")
        if self._next_slot_index >= self.max_clients:
            raise QoSError(f"monitor supports at most {self.max_clients} clients")
        if self.admission is not None:
            self.admission.admit(client_id, reservation)
        index, layout = self._allocate_slot()
        self._clients[client_id] = _ClientSlot(
            client_id, reservation, qp, layout, index
        )
        return layout

    def _allocate_slot(self, index: Optional[int] = None):
        """Assign control-memory slots (a fresh index unless reusing one)."""
        if index is None:
            index = self._next_slot_index
            self._next_slot_index += 1
        base = self.control_region.addr + 8 + index * _CLIENT_STRIDE
        layout = ControlLayout(
            rkey=self.control_region.rkey,
            pool_addr=self.pool_addr,
            report_live_addr=base,
            report_final_addr=base + 8,
        )
        return index, layout

    def remove_client(self, client_id: int) -> None:
        """Release a departing client's reservation.

        Effective from the next period start: the freed tokens flow
        into the global pool (and the admission controller's headroom).
        The client's control slots are retired, not reused — except by
        the *same* client re-registering through :meth:`rejoin_client`
        — so a straggling report cannot corrupt another client's
        accounting.
        """
        slot = self._clients.pop(client_id, None)
        if slot is None:
            raise QoSError(f"client {client_id} is not registered")
        self._retired_slots[client_id] = slot.index
        if self.admission is not None:
            self.admission.release(client_id)

    @property
    def total_reserved(self) -> int:
        """Sum of admitted reservations (tokens/period)."""
        return sum(slot.reservation for slot in self._clients.values())

    # ------------------------------------------------------------------
    # Failover rejoin (see docs/RECOVERY.md)
    # ------------------------------------------------------------------
    def rejoin_client(self, client_id: int, reservation: int, qp):
        """Adopt a client that failed over from a dead data node.

        Unlike :meth:`add_client`, this runs mid-period: the original
        reservation is reconciled against this node's remaining
        capacity (clamped, never rejected outright, so a failed-over
        client keeps *some* guarantee), the slot's report words are
        initialized immediately, and the returned grant is pro-rated to
        the remainder of the current period.  Idempotent: a retransmitted
        request gets the same slot back.

        Returns a dict with the slot layout and period coordinates, or
        None if the monitor is out of slots.
        """
        slot = self._clients.get(client_id)
        if slot is None:
            granted = reservation
            if self.admission is not None:
                granted = min(
                    granted,
                    self.admission.local_capacity,
                    max(0, self.admission.headroom),
                )
                self.admission.admit(client_id, granted)
            if granted < reservation:
                self.rejoin_clamped += 1
            index = None
            if self._next_slot_index >= self.max_clients:
                # Out of fresh slots: the one safe reuse is this same
                # client's own retired slot (no other writer exists).
                index = self._retired_slots.pop(client_id, None)
                if index is None:
                    if self.admission is not None:
                        self.admission.release(client_id)
                    return None
            index, layout = self._allocate_slot(index)
            slot = _ClientSlot(client_id, granted, qp, layout, index)
            self._clients[client_id] = slot
            memory = self.host.memory.backing
            memory.write_u64(layout.report_live_addr, granted << 32)
            memory.write_u64(
                layout.report_final_addr, _stale_sentinel(granted)
            )
            self.rejoins.append({
                "client": client_id,
                "requested": reservation,
                "granted": granted,
                "period": self.period_id,
                "time": self.sim.now,
            })
            self.tracer.emit("monitor", "client_rejoined",
                             period=self.period_id, client=client_id,
                             requested=reservation, granted=granted)
        remaining = max(0.0, self._period_end - self.sim.now)
        tokens_now = int(slot.reservation * remaining / self.config.period)
        return {
            "layout": slot.layout,
            "reservation": slot.reservation,
            "tokens_now": tokens_now,
            "period_id": self.period_id,
            "period_end_time": self._period_end,
            "generation": self.generation,
        }

    def update_reservation(self, client_id: int, reservation: int) -> dict:
        """Resize a registered client's reservation mid-period.

        The global coordinator's apply path: the client keeps its slot
        and control-memory layout, only the grant changes.  The new
        value is clamped against the local capacity and the admission
        headroom (the other clients' reservations are untouched), the
        slot's report words are re-initialized for the new grant —
        exactly the rejoin treatment, so the end-of-period stale/lease
        accounting stays consistent — and the returned grant is
        pro-rated to the remainder of the current period.  From the
        next ``_begin_period`` the full new reservation flows through
        the normal :class:`PeriodStart` dispatch automatically.
        """
        slot = self._clients.get(client_id)
        if slot is None:
            raise QoSError(f"client {client_id} is not registered")
        granted = reservation
        if self.reservation_guard is not None:
            allowed = self.reservation_guard(client_id, granted)
            if allowed < granted:
                self.hierarchy_clamped += 1
                granted = allowed
        if self.admission is not None:
            others = (self.admission.total_reserved
                      - self.admission.admitted[client_id])
            granted = min(
                granted,
                self.admission.local_capacity,
                max(0, self.admission.global_capacity - others),
            )
            if granted < reservation:
                self.rebalance_clamped += 1
            self.admission.resize(client_id, granted)
        previous = slot.reservation
        slot.reservation = granted
        memory = self.host.memory.backing
        memory.write_u64(slot.layout.report_live_addr, granted << 32)
        memory.write_u64(
            slot.layout.report_final_addr, _stale_sentinel(granted)
        )
        remaining = max(0.0, self._period_end - self.sim.now)
        tokens_now = int(granted * remaining / self.config.period)
        self.rebalances.append({
            "client": client_id,
            "previous": previous,
            "requested": reservation,
            "granted": granted,
            "period": self.period_id,
            "time": self.sim.now,
        })
        self.tracer.emit("monitor", "reservation_resized",
                         period=self.period_id, client=client_id,
                         previous=previous, granted=granted)
        return {
            "reservation": granted,
            "tokens_now": tokens_now,
            "period_id": self.period_id,
            "period_end_time": self._period_end,
            "generation": self.generation,
        }

    def attach_rejoin_handler(self, dispatcher) -> None:
        """Serve :class:`RejoinRequest` control SENDs on ``dispatcher``."""
        dispatcher.register(RejoinRequest, self._on_rejoin_request)

    def _on_rejoin_request(self, msg: RejoinRequest, reply_qp) -> None:
        grant = self.rejoin_client(msg.client_id, msg.reservation, reply_qp)
        if grant is None:
            response = RejoinResponse(
                client_id=msg.client_id, ok=False, reservation=0, tokens_now=0
            )
        else:
            layout = grant["layout"]
            response = RejoinResponse(
                client_id=msg.client_id,
                ok=True,
                reservation=grant["reservation"],
                tokens_now=grant["tokens_now"],
                rkey=layout.rkey,
                pool_addr=layout.pool_addr,
                report_live_addr=layout.report_live_addr,
                report_final_addr=layout.report_final_addr,
                period_id=grant["period_id"],
                period_end_time=grant["period_end_time"],
                generation=grant["generation"],
            )
        wr = WorkRequest(
            opcode=OpType.SEND,
            payload=response,
            size=CONTROL_MESSAGE_SIZE,
            is_response=True,
            control=True,
        )
        try:
            reply_qp.post_send(wr)
        except QPError:
            self.sends_failed += 1

    def reinitialize(self) -> None:
        """Re-initialize the control words after a crash-window restart.

        The node's memory came back zeroed (or stale): rebuild the pool
        word and every slot's report words for the remainder of the
        current period, bump the generation, and push an out-of-band
        :class:`PeriodStart` carrying a pro-rated grant and the new
        stamp.  Clients that see the generation change discard any pool
        tokens fetched against the dead memory and resynchronize
        immediately instead of limping to the next boundary.
        """
        self.generation += 1
        self.reinitializations += 1
        remaining = max(0.0, self._period_end - self.sim.now)
        fraction = remaining / self.config.period if self.config.period else 0.0
        pool_now = int(self._pool_init * fraction)
        self._write_pool(pool_now)
        self._reporting_triggered = False
        memory = self.host.memory.backing
        for slot in self._clients.values():
            tokens_now = int(slot.reservation * fraction)
            memory.write_u64(slot.layout.report_live_addr, tokens_now << 32)
            memory.write_u64(
                slot.layout.report_final_addr, _stale_sentinel(slot.reservation)
            )
            self._send(slot, PeriodStart(
                period_id=self.period_id,
                tokens=tokens_now,
                period_end_time=self._period_end,
                generation=self.generation,
            ))
        self.tracer.emit("monitor", "reinitialized", period=self.period_id,
                         generation=self.generation, pool=pool_now)

    # ------------------------------------------------------------------
    # Period machinery
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin driving QoS periods (call once, after wiring clients)."""
        if self._running:
            raise QoSError("monitor already started")
        self._running = True
        self.sim.process(self._run())

    def _run(self):
        config = self.config
        while True:
            self._begin_period()
            remaining = self._period_end - self.sim.now
            while remaining > config.check_interval:
                yield self.sim.timeout(config.check_interval)
                self._check_interval()
                remaining = self._period_end - self.sim.now
            if remaining > 0:
                yield self.sim.timeout(remaining)
            self._end_period()

    def _begin_period(self) -> None:
        self.period_id += 1
        self._period_end = self.sim.now + self.config.period
        self._reporting_triggered = False
        self._violated_this_period.clear()
        omega = self.estimator.current
        self._pool_init = max(0, omega - self.total_reserved)
        self._write_pool(self._pool_init)
        self.tracer.emit("monitor", "period_begin", period=self.period_id,
                         estimate=omega, pool=self._pool_init)
        telemetry = self.sim.telemetry
        if telemetry is not None:
            telemetry.on_period_begin(
                self.period_id, self._pool_init, self.total_reserved,
                source=self.host.name,
            )
        memory = self.host.memory.backing
        for slot in self._clients.values():
            # Reset the live report to "full residual, nothing done" so a
            # conversion before the first report stays conservative.
            memory.write_u64(
                slot.layout.report_live_addr,
                (slot.reservation << 32),
            )
            # The final word starts at the stale sentinel; if it is still
            # there at period end the client made no contact all period
            # (liveness lease, _end_period).
            memory.write_u64(
                slot.layout.report_final_addr,
                _stale_sentinel(slot.reservation),
            )
            self._send(slot, PeriodStart(
                period_id=self.period_id,
                tokens=slot.reservation,
                period_end_time=self._period_end,
                generation=self.generation,
            ))

    def _check_interval(self) -> None:
        # Step S1: probe the pool.  The monitor runs on the data node so
        # this is a local read (the paper uses a loopback CAS).
        pool = self._read_pool()
        self.pool_history.append((self.sim.now, pool))
        if not self._reporting_triggered:
            if pool < self._pool_init:
                self._reporting_triggered = True
                self.tracer.emit("monitor", "reporting_triggered",
                                 period=self.period_id, pool=pool)
                for slot in self._clients.values():
                    self._send(slot, ReportRequest(period_id=self.period_id))
            return
        self._check_local_violations()
        if not self.config.token_conversion:
            return
        # Step T2: token conversion from the last reported residuals.
        residual_sum = 0
        memory = self.host.memory.backing
        omega = self.estimator.current
        # A residual beyond the whole capacity estimate (+ one FAA batch
        # of slack for in-flight grants) can only be a corrupted word;
        # taking it at face value would zero the pool for the rest of
        # the period.
        residual_bound = omega + self.config.batch_size
        for slot in self._clients.values():
            residual, _completed = unpack_report(
                memory.read_u64(slot.layout.report_live_addr)
            )
            residual_sum += self._clamp(
                residual, residual_bound, "residual", slot.client_id
            )
        remaining = max(0.0, self._period_end - self.sim.now)
        new_pool = max(
            int(omega * remaining / self.config.period) - residual_sum, 0
        )
        self._write_pool(new_pool)
        self.conversions += 1
        self.tracer.emit("monitor", "conversion", period=self.period_id,
                         residual_sum=residual_sum, pool=new_pool)
        telemetry = self.sim.telemetry
        if telemetry is not None:
            telemetry.on_conversion(
                self.period_id, pool, new_pool, residual_sum,
                source=self.host.name,
            )

    def _end_period(self) -> None:
        memory = self.host.memory.backing
        total_completed = 0
        per_client = {}
        lease = self.config.lease_periods
        # A single client cannot complete more than the whole node's
        # capacity; 2x the estimate (+ batch slack) leaves the estimator
        # room to discover under-estimation while rejecting garbage.
        completed_bound = 2 * self.estimator.current + self.config.batch_size
        expired = []
        for slot in self._clients.values():
            word = memory.read_u64(slot.layout.report_final_addr)
            if word == _stale_sentinel(slot.reservation):
                # No write all period: the client is unreachable or dead.
                slot.lease_streak += 1
                self.stale_reports += 1
                self.tracer.emit("monitor", "stale_report",
                                 period=self.period_id, client=slot.client_id,
                                 streak=slot.lease_streak)
                if lease and slot.lease_streak >= lease:
                    expired.append(slot)
                completed = 0
            else:
                slot.lease_streak = 0
                _residual, completed = unpack_report(word)
                completed = self._clamp(
                    completed, completed_bound, "completed", slot.client_id
                )
            total_completed += completed
            per_client[slot.client_id] = completed
            self._track_underuse(slot, completed)
        for slot in expired:
            self.remove_client(slot.client_id)
            self.evictions.append({
                "period": self.period_id,
                "client": slot.client_id,
                "reservation": slot.reservation,
                "time": self.sim.now,
            })
            self.tracer.emit("monitor", "client_evicted",
                             period=self.period_id, client=slot.client_id,
                             reservation=slot.reservation)
        self.period_records.append(
            {
                "period": self.period_id,
                "estimate": self.estimator.current,
                "completed": total_completed,
                "per_client": per_client,
                "reporting_triggered": self._reporting_triggered,
            }
        )
        self.estimator.update(total_completed)
        self.tracer.emit("monitor", "estimate", period=self.period_id,
                         completed=total_completed,
                         next_estimate=self.estimator.current)

    def _check_local_violations(self) -> None:
        """Definition 2 at runtime: flag clients whose outstanding
        reservation exceeds what C_L can deliver in the rest of the
        period (requires admission control for the C_L value)."""
        if self.admission is None:
            return
        local_rate = self.admission.local_capacity / self.config.period
        remaining = max(0.0, self._period_end - self.sim.now)
        memory = self.host.memory.backing
        for slot in self._clients.values():
            if slot.client_id in self._violated_this_period:
                continue
            _residual, completed = unpack_report(
                memory.read_u64(slot.layout.report_live_addr)
            )
            outstanding = max(0, slot.reservation - completed)
            if outstanding > remaining * local_rate:
                self._violated_this_period.add(slot.client_id)
                self.local_violations.append({
                    "period": self.period_id,
                    "client": slot.client_id,
                    "time": self.sim.now,
                    "outstanding": outstanding,
                })

    def _track_underuse(self, slot: _ClientSlot, completed: int) -> None:
        if completed < slot.reservation:
            slot.underuse_streak += 1
            if slot.underuse_streak >= self.config.underuse_alert_threshold:
                self._send(slot, ReservationAlert(
                    period_id=self.period_id,
                    consecutive_underuse=slot.underuse_streak,
                ))
        else:
            slot.underuse_streak = 0

    def _clamp(self, value: int, bound: int, field: str, client_id: int) -> int:
        """Reject an out-of-range report word (bit corruption, stale
        garbage from a crashed client) by clamping it to ``bound``."""
        if value <= bound:
            return value
        self.clamped_reports += 1
        self.tracer.emit("monitor", "report_clamped", period=self.period_id,
                         client=client_id, field=field, value=value,
                         bound=bound)
        return bound

    # ------------------------------------------------------------------
    # Metrics registry integration
    # ------------------------------------------------------------------
    # Scalar fields robustness_summary exposes (its list-valued entries
    # — evictions, rejoins — are read off the monitor directly).
    SUMMARY_FIELDS = (
        "stale_reports",
        "clamped_reports",
        "sends_failed",
        "reinitializations",
    )

    def metrics_items(self):
        """``(name, getter)`` pairs for the telemetry metrics registry."""
        items = [
            (f"monitor_{field}", lambda f=field: getattr(self, f))
            for field in self.SUMMARY_FIELDS
        ]
        items.extend([
            ("monitor_period_id", lambda: self.period_id),
            ("monitor_conversions", lambda: self.conversions),
            ("monitor_pool_value", self._read_pool),
            ("monitor_total_reserved", lambda: self.total_reserved),
            ("monitor_capacity_estimate", lambda: self.estimator.current),
            ("monitor_clients", lambda: len(self._clients)),
            ("monitor_evictions", lambda: len(self.evictions)),
            ("monitor_rejoins", lambda: len(self.rejoins)),
            ("monitor_rejoin_clamped", lambda: self.rejoin_clamped),
            ("monitor_local_violations", lambda: len(self.local_violations)),
            ("monitor_generation", lambda: self.generation),
        ])
        return items

    # ------------------------------------------------------------------
    def _read_pool(self) -> int:
        return to_signed64(self.host.memory.backing.read_u64(self.pool_addr))

    def _write_pool(self, value: int) -> None:
        self.host.memory.backing.write_u64(self.pool_addr, to_unsigned64(value))

    def _send(self, slot: _ClientSlot, message) -> None:
        wr = WorkRequest(
            opcode=OpType.SEND,
            payload=message,
            size=CONTROL_MESSAGE_SIZE,
            is_response=True,  # offloaded control path, not a client request
            control=True,
        )
        try:
            slot.qp.post_send(wr)
        except QPError:
            # Dead connection: the lease machinery will notice the
            # client's silence; losing the SEND itself is survivable.
            self.sends_failed += 1
