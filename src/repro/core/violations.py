"""Structured invariant-violation records.

Every oracle in the stack — the per-tick :class:`~repro.core.invariants.
InvariantChecker`, the chaos harnesses' end-of-run checks, and the hunt
subsystem's liveness oracles — reports findings as :class:`Violation`
records instead of bare strings.  A record carries the machine-readable
fields the anomaly-hunt minimizer classifies on (``kind``, subject,
observed/expected values) while ``__str__`` reproduces the exact text
the pre-existing string-based assertions and reports were built on, so
``assert checker.violations == []`` and CLI output are unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional


@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant violation, classified and attributable.

    ``kind`` is a stable machine-readable identifier (e.g.
    ``"reservation-unmet"``); ``subject`` names the client/node/host the
    violation is about (None for cluster-wide properties).  ``time`` is
    the simulated time of detection for tick-based checkers and None
    for end-of-run oracles.  ``message`` is the human-readable text;
    ``__str__`` prefixes it with ``t=<time>:`` exactly as the old
    string-based records did when a time is present.
    """

    kind: str
    message: str
    time: Optional[float] = None
    subject: Optional[str] = None
    observed: Any = None
    expected: Any = None

    def __str__(self) -> str:
        if self.time is not None:
            return f"t={self.time:.6f}: {self.message}"
        return self.message

    def to_dict(self) -> dict:
        """A JSON-ready dict (for campaign reports and reproducers)."""
        payload = {"kind": self.kind, "message": self.message}
        if self.time is not None:
            payload["time"] = self.time
        if self.subject is not None:
            payload["subject"] = self.subject
        if self.observed is not None:
            payload["observed"] = self.observed
        if self.expected is not None:
            payload["expected"] = self.expected
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Violation":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=payload["kind"],
            message=payload["message"],
            time=payload.get("time"),
            subject=payload.get("subject"),
            observed=payload.get("observed"),
            expected=payload.get("expected"),
        )
