"""Runtime invariant checking for a deployed Haechi cluster.

Attach an :class:`InvariantChecker` to a built cluster and it verifies,
at every protocol tick, the safety properties the token design rests
on:

- **client accounting**: token counts never go negative and the
  reservation clamp ``xi_res <= ceil(X)`` holds after every management
  tick;
- **pool sanity**: the global pool word never exceeds the capacity
  estimate (it may be transiently negative by at most the number of
  clients times one batch — concurrent FAAs on an empty pool);
- **capacity booking**: at any check instant, the pool plus every
  client's token obligations stay within the remaining-period capacity
  plus a slack of one batch per client (the amount in flight between a
  conversion write and the FAAs racing it);
- **limit ceiling**: a limited client's per-period issuance never
  exceeds its ``L_i``.

The checker is a *test instrument*: violations are collected (not
raised) so a test can run a whole scenario and assert the list is
empty, getting every violation at once instead of the first.
Violations are structured :class:`~repro.core.violations.Violation`
records (``str()`` of one reproduces the historical text) so the hunt
minimizer can classify findings by ``kind``.
"""

from __future__ import annotations

import math
from typing import List

from repro.core.violations import Violation


class InvariantChecker:
    """Periodically validates a cluster's protocol invariants."""

    def __init__(self, cluster, interval: float = None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.interval = interval or cluster.config.check_interval
        self.violations: List[Violation] = []
        self.checks_run = 0
        self.sim.schedule(self.interval, self._tick)

    def _note(self, kind: str, message: str, subject=None,
              observed=None, expected=None) -> None:
        self.violations.append(Violation(
            kind=kind, message=message, time=self.sim.now,
            subject=subject, observed=observed, expected=expected,
        ))

    def kinds(self) -> List[str]:
        """The distinct violation kinds recorded, in first-seen order."""
        seen: List[str] = []
        for violation in self.violations:
            if violation.kind not in seen:
                seen.append(violation.kind)
        return seen

    def _tick(self) -> None:
        self.checks_run += 1
        self._check_clients()
        self._check_pool()
        self.sim.schedule(self.interval, self._tick)

    # ------------------------------------------------------------------
    def _check_clients(self) -> None:
        for client in self.cluster.clients:
            engine = client.engine
            if engine is None:
                continue
            tokens = engine.tokens
            if tokens.xi_res < 0:
                self._note(
                    "tokens-negative",
                    f"{client.name}: xi_res negative ({tokens.xi_res})",
                    subject=client.name, observed=tokens.xi_res, expected=0,
                )
            if tokens.local_global < 0:
                self._note(
                    "tokens-negative",
                    f"{client.name}: local_global negative "
                    f"({tokens.local_global})",
                    subject=client.name, observed=tokens.local_global,
                    expected=0,
                )
            if tokens.x_bound < 0:
                self._note(
                    "tokens-negative",
                    f"{client.name}: X negative ({tokens.x_bound})",
                    subject=client.name, observed=tokens.x_bound, expected=0,
                )
            bound = math.ceil(tokens.x_bound - 1e-9)
            # one tick of grace: the clamp runs on the management tick
            slack = math.ceil(tokens.rate * self.cluster.config.mgmt_interval) + 1
            if tokens.xi_res > bound + slack:
                self._note(
                    "reservation-clamp",
                    f"{client.name}: xi_res {tokens.xi_res} above "
                    f"entitlement bound {bound} (+{slack} slack)",
                    subject=client.name, observed=tokens.xi_res,
                    expected=bound + slack,
                )
            if engine.inflight_tokened < 0:
                self._note(
                    "inflight-negative",
                    f"{client.name}: negative in-flight count "
                    f"({engine.inflight_tokened})",
                    subject=client.name, observed=engine.inflight_tokened,
                    expected=0,
                )
            if engine.limit is not None and (
                engine.issued_this_period > engine.limit
            ):
                self._note(
                    "limit-exceeded",
                    f"{client.name}: issued {engine.issued_this_period} "
                    f"past limit {engine.limit}",
                    subject=client.name, observed=engine.issued_this_period,
                    expected=engine.limit,
                )

    def _check_pool(self) -> None:
        monitor = self.cluster.monitor
        if monitor is None or monitor.period_id == 0:
            return
        pool = monitor._read_pool()
        omega = monitor.estimator.current
        batch = self.cluster.config.batch_size
        engines = [c.engine for c in self.cluster.clients if c.engine]
        if pool > omega:
            self._note(
                "pool-over-capacity",
                f"pool {pool} exceeds capacity estimate {omega}",
                observed=pool, expected=omega,
            )
        # Worst-case negative excursion: every client retries a batched
        # FAA each retry interval for a whole period against an empty,
        # never-refreshed pool (Basic Haechi).  Anything below that is a
        # runaway.
        config = self.cluster.config
        retries_per_period = math.ceil(
            config.period / config.faa_retry_interval
        ) + 1
        floor = -batch * max(1, len(engines)) * retries_per_period
        if pool < floor:
            self._note(
                "pool-runaway",
                f"pool {pool} below the {floor} retry-storm floor",
                observed=pool, expected=floor,
            )
        # The paper's token invariant: *unspent* tokens (global pool plus
        # tokens held at clients) never exceed the capacity remaining in
        # the period.  In-flight I/Os are spent tokens and excluded —
        # under capacity overestimation they legitimately spill into the
        # next period (the Fig. 17 transient).  Conversion is the
        # mechanism that enforces this, so the check applies only once
        # reporting/conversion is active.
        remaining = max(0.0, monitor._period_end - self.sim.now)
        capacity_left = omega * remaining / self.cluster.config.period
        unspent = sum(
            engine.tokens.residual + engine.tokens.local_global
            for engine in engines
        )
        slack = batch * max(1, len(engines)) + omega * 0.02
        if monitor.config.token_conversion and monitor._reporting_triggered:
            if max(pool, 0) + unspent > capacity_left + slack:
                self._note(
                    "tokens-overbooked",
                    f"unspent tokens overbooked: pool {pool} + held "
                    f"{unspent} > capacity left {capacity_left:.0f} "
                    f"(+slack {slack:.0f})",
                    observed=max(pool, 0) + unspent,
                    expected=capacity_left + slack,
                )

    # ------------------------------------------------------------------
    def assert_clean(self) -> None:
        """Raise AssertionError listing every recorded violation."""
        if self.violations:
            summary = "\n".join(str(v) for v in self.violations[:20])
            raise AssertionError(
                f"{len(self.violations)} invariant violations:\n{summary}"
            )
