"""Haechi protocol parameters.

Defaults are the paper's (Sec. II): 1 s QoS period, 1 ms management /
reporting / check intervals, token batch B = 1000.  ``paper(time_scale=K)``
produces a *time-dilated* configuration: the period and every interval
shrink by K while op costs and rates stay physical, so token counts per
period shrink by K too.  Time dilation preserves every ratio the
protocol depends on (control ops per period, batch-to-pool ratio,
relative token-management overhead), which is what makes scaled runs
faithful in shape.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.common.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class HaechiConfig:
    """All tunables of the Haechi protocol (times in seconds)."""

    period: float = 1.0  # QoS period T
    mgmt_interval: float = 1e-3  # delta: token-management thread tick
    report_interval: float = 1e-3  # client reporting tick
    check_interval: float = 1e-3  # monitor wake-up tick
    batch_size: int = 1000  # B: tokens per fetch-and-add
    faa_retry_interval: float = 1e-3  # wait between FAA retries when pool empty
    final_report_margin: float = 2e-3  # final stats write happens T - margin

    # Control-plane robustness (fault tolerance; see docs/FAULTS.md).
    # FAA retries after *transport failures* back off exponentially from
    # faa_retry_interval by faa_backoff_factor per attempt, capped at
    # faa_backoff_cap (None = 16x the base interval), with deterministic
    # jitter in [0.5, 1.0) of the computed delay.  Pool-exhausted waits
    # are not failures and keep the paper's fixed interval.
    faa_backoff_factor: float = 2.0
    faa_backoff_cap: Optional[float] = None
    # A control op (FAA) with no completion by this deadline is treated
    # as failed and retried; a late completion is discarded.  None = 8x
    # faa_retry_interval.
    control_op_deadline: Optional[float] = None
    # Degraded local-only mode: after this many consecutive periods in
    # which every global-pool FAA failed at the transport level, the
    # engine stops touching the pool and spends only its reservation,
    # probing once per period until the fabric recovers.  0 disables.
    degraded_after: int = 3
    # Liveness leases: a client whose report words stay stale for this
    # many consecutive periods is evicted by the monitor and its
    # reservation returns to the pool.  0 disables.
    lease_periods: int = 4

    # Algorithm 1 (adaptive capacity estimation)
    eta: int = 10_000  # token increment on saturation
    history_window: int = 10  # M
    saturation_tolerance: float = 0.01  # U >= (1-tol)*Omega counts as "=="
    underuse_alert_threshold: int = 3  # consecutive under-reservation periods

    # protocol variant switches
    token_conversion: bool = True  # False = "Basic Haechi"

    time_scale: float = 1.0  # K used to build this config (bookkeeping)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigError(f"period must be positive, got {self.period}")
        for name in ("mgmt_interval", "report_interval", "check_interval",
                     "faa_retry_interval", "final_report_margin"):
            value = getattr(self, name)
            if not 0 < value < self.period:
                raise ConfigError(
                    f"{name}={value} must be in (0, period={self.period})"
                )
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.faa_backoff_factor < 1.0:
            raise ConfigError(
                f"faa_backoff_factor must be >= 1, got {self.faa_backoff_factor}"
            )
        for name in ("faa_backoff_cap", "control_op_deadline"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigError(f"{name}={value} must be positive")
        for name in ("degraded_after", "lease_periods"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be >= 0, got {value}")
        if self.eta < 0:
            raise ConfigError(f"eta must be >= 0, got {self.eta}")
        if self.history_window < 1:
            raise ConfigError(
                f"history_window must be >= 1, got {self.history_window}"
            )
        if not 0 <= self.saturation_tolerance < 1:
            raise ConfigError(
                f"saturation_tolerance must be in [0, 1), got "
                f"{self.saturation_tolerance}"
            )

    @classmethod
    def paper(
        cls,
        time_scale: float = 1.0,
        interval_divisor: int = 1000,
        **overrides,
    ) -> "HaechiConfig":
        """The paper's configuration, time-dilated by ``time_scale``.

        ``interval_divisor`` sets how many management/report/check ticks
        fit in one period (the paper uses 1000: 1 ms ticks in a 1 s
        period).  Benches may lower it to trade control-plane fidelity
        for host CPU time.
        """
        if time_scale <= 0:
            raise ConfigError(f"time_scale must be positive, got {time_scale}")
        if interval_divisor < 10:
            raise ConfigError(
                f"interval_divisor must be >= 10, got {interval_divisor}"
            )
        period = 1.0 / time_scale
        tick = period / interval_divisor
        values = dict(
            period=period,
            mgmt_interval=tick,
            report_interval=tick,
            check_interval=tick,
            batch_size=max(1, round(1000 / time_scale)),
            faa_retry_interval=tick,
            final_report_margin=2 * tick,
            eta=max(1, round(10_000 / time_scale)),
            time_scale=time_scale,
        )
        values.update(overrides)
        return cls(**values)

    @property
    def resolved_backoff_cap(self) -> float:
        """The effective ceiling on the FAA retry backoff."""
        if self.faa_backoff_cap is not None:
            return self.faa_backoff_cap
        return 16.0 * self.faa_retry_interval

    @property
    def resolved_control_deadline(self) -> float:
        """The effective completion deadline for control-plane ops."""
        if self.control_op_deadline is not None:
            return self.control_op_deadline
        return 8.0 * self.faa_retry_interval

    def tokens_per_period(self, rate_ops_per_second: float) -> int:
        """Convert an ops/s rate into tokens per (dilated) period."""
        return int(round(rate_ops_per_second * self.period))

    def rate_of(self, tokens: int) -> float:
        """Convert tokens/period back to ops/s."""
        return tokens / self.period
