"""Haechi: the paper's token-based QoS mechanism.

The protocol splits QoS enforcement between a
:class:`~repro.core.engine.QoSEngine` at each client and a
:class:`~repro.core.monitor.QoSMonitor` at the data node:

- At the start of each QoS period the monitor pushes ``R_i`` reservation
  tokens to client *i* (two-sided SEND) and initializes a global token
  pool — a 64-bit word in data-node memory — to ``C - sum(R_i)``.
- A client I/O consumes a reservation token, or, once those are gone, a
  token claimed from the global pool with a batched remote
  fetch-and-add.  I/Os without a token are blocked at the engine.
- A client-side management thread decays the entitlement bound
  ``X = R_i - rho_i(t)`` and yields reservation tokens the client is not
  backing with demand.
- When the monitor observes the pool shrinking it asks clients to begin
  silent reporting (one 64-bit one-sided WRITE per interval), then
  repeatedly *converts* unused reservations:
  ``xi_global = max(C*(T-t)/T - L, 0)`` where L is the sum of reported
  residual reservations — this is what makes Haechi work-conserving.
- An adaptive capacity estimator (Algorithm 1) retunes ``C`` every
  period from reported completions.
"""

from repro.core.admission import AdmissionController
from repro.core.capacity import AdaptiveCapacityEstimator, ProfiledCapacity
from repro.core.config import HaechiConfig
from repro.core.engine import QoSEngine
from repro.core.monitor import QoSMonitor
from repro.core.tokens import ClientTokenState

__all__ = [
    "AdaptiveCapacityEstimator",
    "AdmissionController",
    "ClientTokenState",
    "HaechiConfig",
    "ProfiledCapacity",
    "QoSEngine",
    "QoSMonitor",
]
