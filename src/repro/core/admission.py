"""Admission control (the paper's Definition 2).

Two feasibility constraints guard every admission:

- **aggregate**: the saturated system capacity must cover all admitted
  reservations, ``sum(R_i) <= T * C_G``;
- **local**: one-sided clients individually saturate far below the
  server (400 vs 1570 KIOPS), so each reservation must be completable
  by a single client, ``R_i <= T * C_L``.

:func:`local_violation` implements the runtime form
``R_i - N_i(t) > (T - t) * C_L`` used by tests and the Fig. 8(b)
analysis: even an admitted client can become locally infeasible if the
schedule leaves too much of its reservation for the tail of the period.
"""

from __future__ import annotations

from typing import Dict

from repro.common.errors import AdmissionError


class AdmissionController:
    """Tracks admitted reservations against the two capacity limits."""

    def __init__(self, global_tokens_per_period: int, local_tokens_per_period: int):
        if global_tokens_per_period <= 0:
            raise AdmissionError(
                f"global capacity must be positive, got {global_tokens_per_period}"
            )
        if local_tokens_per_period <= 0:
            raise AdmissionError(
                f"local capacity must be positive, got {local_tokens_per_period}"
            )
        self.global_capacity = global_tokens_per_period
        self.local_capacity = local_tokens_per_period
        self.admitted: Dict[int, int] = {}

    @property
    def total_reserved(self) -> int:
        """Sum of admitted reservations (tokens/period)."""
        return sum(self.admitted.values())

    @property
    def headroom(self) -> int:
        """Unreserved aggregate capacity (tokens/period)."""
        return self.global_capacity - self.total_reserved

    def admit(self, client_id: int, reservation: int) -> None:
        """Admit ``client_id`` with ``reservation`` tokens/period.

        Raises :class:`AdmissionError` on either capacity violation or a
        duplicate admission.
        """
        if client_id in self.admitted:
            raise AdmissionError(f"client {client_id} is already admitted")
        if reservation < 0:
            raise AdmissionError(f"reservation must be >= 0, got {reservation}")
        if reservation > self.local_capacity:
            raise AdmissionError(
                f"local capacity violation: reservation {reservation} exceeds "
                f"per-client capacity {self.local_capacity}"
            )
        if self.total_reserved + reservation > self.global_capacity:
            raise AdmissionError(
                f"aggregate capacity violation: {self.total_reserved} + "
                f"{reservation} exceeds {self.global_capacity}"
            )
        self.admitted[client_id] = reservation

    def resize(self, client_id: int, reservation: int) -> None:
        """Replace an admitted client's reservation (Definition 2 still
        enforced against the *new* value).

        Used by the global coordinator's mid-period split updates: the
        client stays admitted throughout, only its share moves.  Raises
        :class:`AdmissionError` when the new value violates either
        capacity constraint, leaving the old reservation in force.
        """
        if client_id not in self.admitted:
            raise AdmissionError(f"client {client_id} is not admitted")
        if reservation < 0:
            raise AdmissionError(f"reservation must be >= 0, got {reservation}")
        if reservation > self.local_capacity:
            raise AdmissionError(
                f"local capacity violation: reservation {reservation} exceeds "
                f"per-client capacity {self.local_capacity}"
            )
        others = self.total_reserved - self.admitted[client_id]
        if others + reservation > self.global_capacity:
            raise AdmissionError(
                f"aggregate capacity violation: {others} + {reservation} "
                f"exceeds {self.global_capacity}"
            )
        self.admitted[client_id] = reservation

    def release(self, client_id: int) -> None:
        """Remove a departed client's reservation."""
        if client_id not in self.admitted:
            raise AdmissionError(f"client {client_id} is not admitted")
        del self.admitted[client_id]


def local_violation(
    reservation: int,
    completed: int,
    elapsed: float,
    period: float,
    local_rate: float,
) -> bool:
    """Definition 2's runtime check.

    True when the residual reservation can no longer be completed at the
    single-client rate: ``R_i - N_i(t) > (T - t) * C_L``.
    """
    if not 0 <= elapsed <= period:
        raise AdmissionError(f"elapsed {elapsed} outside [0, {period}]")
    residual = max(0, reservation - completed)
    return residual > (period - elapsed) * local_rate
