"""Adaptive capacity estimation (the paper's Algorithm 1).

Each QoS period the monitor sums the clients' reported completed-I/O
counts ``U``:

- ``U`` at the current estimate (allocated tokens were all consumed):
  the capacity may be *under*-estimated, so add an increment ``eta``.
- ``Omega_min <= U < Omega``: the system had spare tokens; record U in
  a sliding window of the last M such periods and use the window mean.
- ``U < Omega_min = Omega_prof - 3*sigma``: a low-demand period —
  ignore it so idleness cannot crater the estimate.

Exact equality never holds with real counters, so "==" is implemented
as ``U >= (1 - saturation_tolerance) * Omega``.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, List

from repro.common.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class ProfiledCapacity:
    """Result of offline profiling: mean and std-dev, in tokens/period."""

    mean: float
    stddev: float

    @property
    def lower_bound(self) -> float:
        """The Algorithm-1 floor ``Omega_prof - 3*sigma``."""
        return self.mean - 3.0 * self.stddev


class AdaptiveCapacityEstimator:
    """Algorithm 1, with full decision telemetry for the benches."""

    def __init__(
        self,
        profiled: ProfiledCapacity,
        eta: int,
        history_window: int,
        saturation_tolerance: float = 0.01,
    ):
        if profiled.mean <= 0:
            raise ConfigError(f"profiled capacity must be positive: {profiled}")
        if history_window < 1:
            raise ConfigError(f"history_window must be >= 1, got {history_window}")
        if not 0 <= saturation_tolerance < 1:
            raise ConfigError(
                f"saturation_tolerance must be in [0, 1), got {saturation_tolerance}"
            )
        self.profiled = profiled
        self.eta = eta
        self.tolerance = saturation_tolerance
        self._window: Deque[float] = deque(maxlen=history_window)
        self._current = float(profiled.mean)
        self.history: List[float] = [self._current]
        self.decisions: List[str] = []

    @property
    def current(self) -> int:
        """The capacity estimate for the upcoming period (tokens)."""
        return int(round(self._current))

    @property
    def lower_bound(self) -> float:
        """``Omega_prof - 3*sigma``."""
        return self.profiled.lower_bound

    def update(self, completed_total: int) -> int:
        """Feed one period's total completions U; returns the new estimate."""
        if completed_total < 0:
            raise ConfigError(f"completions must be >= 0, got {completed_total}")
        omega = self._current
        if completed_total >= omega * (1.0 - self.tolerance):
            # All allocated tokens were consumed: possible underestimate.
            self._current = omega + self.eta
            self.decisions.append("increment")
        elif completed_total >= self.lower_bound:
            self._window.append(float(completed_total))
            self._current = sum(self._window) / len(self._window)
            self.decisions.append("window")
        else:
            self.decisions.append("floor")
        self.history.append(self._current)
        return self.current


def profile_capacity(samples) -> ProfiledCapacity:
    """Summarize per-period saturated-throughput samples into a profile.

    The paper profiles by driving continuous back-to-back 4 KB one-sided
    I/Os from 10 clients for one period, repeated 1000 times; the
    cluster harness (:func:`repro.cluster.profiling.run_profiling`)
    produces the samples and this function reduces them.
    """
    values = [float(s) for s in samples]
    if not values:
        raise ConfigError("profiling requires at least one sample")
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / len(values)
    return ProfiledCapacity(mean=mean, stddev=var**0.5)
