"""The client-side QoS engine (paper Sec. II-D, Figs. 3 and 4).

The engine sits between the application and the KV client and owns the
three client-side duties:

- **data access** — every submitted I/O must be backed by a token;
  requests without one queue inside the engine (this is the isolation
  mechanism: a runaway client blocks here, not at the server).  Global
  tokens are claimed with a batched remote fetch-and-add.
- **token management** — a tick thread decays the entitlement bound X
  at rate ``r_i`` and yields unbacked reservation tokens.
- **reporting** — once signalled by the monitor, a tick thread writes
  the packed (residual, completed) word with a silent one-sided WRITE;
  a final statistics word is always written just before period end so
  the monitor can run capacity estimation.

Every remote interaction here is one-sided; the engine never causes
work on the data-node CPU.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from repro.common.errors import QoSError, QPError
from repro.common.rng import make_rng
from repro.common.types import OpType
from repro.core.config import HaechiConfig
from repro.core.protocol import ControlLayout, PeriodStart, ReportRequest, ReservationAlert
from repro.core.tokens import ClientTokenState
from repro.kvstore.client import KVClient
from repro.rdma.atomics import pack_report, to_signed64
from repro.rdma.verbs import WCStatus, WorkCompletion, WorkRequest
from repro.sim.trace import NULL_TRACER

IOCallback = Callable[[bool, object, float], None]


class QoSEngine:
    """QoS enforcement at one client.

    Wire-up: the cluster builder passes the KV client (whose QP carries
    both data and control traffic), the control-memory layout obtained
    at connection time, and registers the engine's message handlers on
    the client host's RPC dispatcher.
    """

    def __init__(
        self,
        client_id: int,
        kv: KVClient,
        layout: ControlLayout,
        config: HaechiConfig,
        reservation: int,
        limit: Optional[int] = None,
        dispatcher=None,
        touch_memory: bool = False,
        tracer=NULL_TRACER,
        seed: int = 0,
    ):
        if limit is not None and limit < reservation:
            raise QoSError(
                f"limit {limit} below reservation {reservation} for "
                f"client {client_id}"
            )
        self.client_id = client_id
        self.kv = kv
        self.sim = kv.sim
        self.layout = layout
        self.config = config
        self.limit = limit
        self.touch_memory = touch_memory
        self.tracer = tracer
        self.tokens = ClientTokenState(reservation, config.period)

        self._queue: Deque[Tuple[int, IOCallback]] = deque()
        self.period_id = 0
        self._period_end = 0.0
        self.completed_this_period = 0  # N_i
        self.issued_this_period = 0
        self.inflight_tokened = 0  # token-backed I/Os posted, not completed
        self._faa_inflight = False
        self._retry_scheduled = False
        self._reporting_active = False
        self._throttled_this_period = False
        self._started = False
        # Completion-closure cache for _issue: in practice every op of
        # a client carries the same app callback, so the wrapper is
        # built once and reused instead of allocated per op.
        self._last_on_complete = None
        self._last_finish = None
        # Chain mode: when the QP carries fabric-model state, drained
        # bursts are posted as doorbell-batched chains (post_chain) so
        # submit_burst's bulk advantage comes from the calibrated
        # amortized-doorbell cost model.  False = historical path,
        # byte-identical to pre-model builds.
        self._chain = kv.qp.fab is not None

        # Control-plane fault tolerance (see docs/FAULTS.md): retries
        # after transport failures back off exponentially with
        # deterministic jitter; an FAA that never completes is failed at
        # the control-op deadline (the epoch discards late completions);
        # K consecutive periods without a usable pool flip the engine
        # into degraded local-only mode, probed once per period.
        self._backoff_rng = make_rng(seed, "engine-backoff", client_id)
        self._retry_attempt = 0
        self._faa_epoch = 0
        self._faa_failed_streak = 0
        self._period_faa_failed = False
        self._period_faa_ok = False
        self.degraded = False

        # Telemetry ledger account for the current grant episode (see
        # repro.telemetry.ledger): opened at each period start / rebind,
        # closed at the next boundary with the episode's aggregate
        # spend/yield/residual.  None when telemetry is not attached.
        self._ledger_account = None

        # Failover support (see docs/RECOVERY.md): control messages are
        # accepted only from the active source (the monitor the engine
        # is currently registered with); suspend() freezes the data path
        # while a failover manager negotiates a rejoin, and rebind()
        # points the engine at the adopting node.  The generation stamp
        # detects a monitor that re-initialized its token words.
        self._active_source: Optional[int] = 0
        self.suspended = False
        self._generation: Optional[int] = None
        # Completion observer for a failover manager: called with
        # ok=True/False for every data-path completion AND every
        # control-op outcome (FAA/probe success or transport failure).
        # Control outcomes matter because an idle client's only signal
        # that its node died is its token fetches failing.
        self.failure_listener: Optional[Callable[[bool], None]] = None

        # telemetry
        self.total_completed = 0
        self.total_submitted = 0
        self.limit_throttle_events = 0  # periods in which the limit bound
        self.faa_issued = 0
        self.faa_failures = 0  # transport errors (drops, QP loss, timeouts)
        self.faa_pool_empty = 0  # successful FAAs that granted nothing
        self.faa_timeouts = 0  # subset of faa_failures hit at the deadline
        self.faa_granted_tokens = 0
        self.probes_issued = 0
        self.reports_written = 0
        self.reports_failed = 0
        self.alerts_received = 0
        self.degraded_entries = 0
        self.degraded_recoveries = 0
        self.degraded_periods = 0
        self.re_registrations = 0
        self.stale_control_messages = 0
        self.generation_resyncs = 0

        if dispatcher is not None:
            self.bind_control_source(dispatcher, 0)

    # ------------------------------------------------------------------
    # Control-source binding (failover support)
    # ------------------------------------------------------------------
    def bind_control_source(self, dispatcher, source: int) -> None:
        """Register the control handlers on ``dispatcher``, tagged with
        ``source``.

        A replicated client binds one source per data node; only
        messages from the currently active source are honoured, so a
        dead (or restarting) primary cannot steer an engine that has
        already failed over — this is the client side of "deregister
        from the dead node's monitor epoch".
        """
        dispatcher.register(
            PeriodStart, self._from_source(source, self._on_period_start)
        )
        dispatcher.register(
            ReportRequest, self._from_source(source, self._on_report_request)
        )
        dispatcher.register(
            ReservationAlert, self._from_source(source, self._on_alert)
        )

    def _from_source(self, source: int, handler):
        def wrapped(msg, reply_qp):
            if self._active_source != source:
                self.stale_control_messages += 1
                return
            handler(msg, reply_qp)
        return wrapped

    def suspend(self) -> None:
        """Freeze the engine while a failover is negotiated.

        No I/O is issued (submissions queue), in-flight control ops are
        epoch-discarded, and *all* control sources are ignored until
        :meth:`rebind` installs the new one.
        """
        self.suspended = True
        self._active_source = None
        self._faa_epoch += 1
        self._faa_inflight = False

    def rebind(
        self,
        kv: KVClient,
        layout: ControlLayout,
        reservation: int,
        tokens_now: int,
        period_id: int,
        period_end_time: float,
        generation: int,
        source: int,
    ) -> None:
        """Re-register with the adopting node's monitor and resume.

        Installs the new KV client and control-memory layout, adopts the
        adopting monitor's period coordinates and generation stamp,
        starts a fresh token state from the pro-rated grant, and drains
        the I/O queued up during the outage.
        """
        # The pre-failover grant episode ends here: close its ledger
        # account against the outgoing token state before replacing it.
        self._ledger_roll("rebind")
        self.kv = kv
        self.layout = layout
        self._chain = kv.qp.fab is not None
        self._active_source = source
        self._generation = generation
        self.tokens = ClientTokenState(reservation, self.config.period)
        self.tokens.start_period(tokens_now)
        self.period_id = period_id
        self._ledger_open(tokens_now)
        self._period_end = period_end_time
        self.completed_this_period = 0
        self.issued_this_period = 0
        self._throttled_this_period = False
        self._reporting_active = False
        self._faa_epoch += 1
        self._faa_inflight = False
        self._retry_attempt = 0
        self._faa_failed_streak = 0
        self._period_faa_failed = False
        self._period_faa_ok = True
        self.degraded = False
        self.suspended = False
        self.re_registrations += 1
        if not self._started:
            self._started = True
            self._mgmt_start()
        self.tracer.emit("engine", "rebound", client=self.client_id,
                         period=period_id, reservation=reservation,
                         tokens_now=tokens_now, generation=generation)
        final_at = period_end_time - self.config.final_report_margin
        if final_at > self.sim.now:
            self.sim.schedule_at(final_at, self._write_final_report, period_id)
        self._drain()

    # ------------------------------------------------------------------
    # Application-facing API
    # ------------------------------------------------------------------
    def submit(self, key: int, on_complete: IOCallback) -> None:
        """Request one read I/O for ``key``; runs when a token backs it."""
        self.total_submitted += 1
        span = None
        telemetry = self.sim.telemetry
        if telemetry is not None:
            # The span starts at submit so the engine's token-queueing
            # stage is part of the op's latency decomposition.
            span = telemetry.data_span("onesided_read", self.kv.name, key)
        queue = self._queue
        if queue:
            # Fast path: a backlogged queue means the last drain ended
            # throttled or token-starved (with the FAA machinery already
            # armed if it could be), and no tokens can have arrived
            # since — token grants come via simulator events, and every
            # one of those handlers drains.  Draining again would be a
            # no-op, so skip it; the new request queues behind the head.
            queue.append((key, on_complete, span))
            return
        queue.append((key, on_complete, span))
        self._drain()

    def submit_burst(self, count: int, key_fn, on_complete: IOCallback) -> None:
        """Queue ``count`` reads (keys drawn from ``key_fn``), then drain.

        Equivalent to ``count`` consecutive :meth:`submit` calls — the
        per-op order of key draws and telemetry span creation is
        preserved, and since no simulator event can run between
        synchronous submits, draining once at the end issues exactly
        the ops the one-drain-per-submit form would have.  Exists so
        burst-pattern apps can hand a period's demand over without a
        Python call pair per op.
        """
        if count <= 0:
            return
        self.total_submitted += count
        queue = self._queue
        telemetry = self.sim.telemetry
        if telemetry is None:
            for _ in range(count):
                queue.append((key_fn(), on_complete, None))
        else:
            name = self.kv.name
            for _ in range(count):
                key = key_fn()
                span = telemetry.data_span("onesided_read", name, key)
                queue.append((key, on_complete, span))
        self._drain()

    @property
    def queue_depth(self) -> int:
        """Requests waiting inside the engine for a token."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Control-plane message handlers
    # ------------------------------------------------------------------
    def _on_period_start(self, msg: PeriodStart, _reply_qp) -> None:
        if self._generation is not None and msg.generation != self._generation:
            # The monitor re-initialized its token words (crash-window
            # restart): any pool tokens fetched before the stamp are
            # claims against dead memory.  start_period below discards
            # them; count the resync for the harnesses.
            self.generation_resyncs += 1
            self.tracer.emit("engine", "generation_resync",
                             client=self.client_id, period=msg.period_id,
                             generation=msg.generation)
        self._generation = msg.generation
        if msg.period_id != self.period_id:
            # A genuine boundary (not an out-of-band mid-period resync)
            # folds the finished period into the failure streak.
            self._roll_failure_window()
        self.period_id = msg.period_id
        self._period_end = msg.period_end_time
        self.tracer.emit("engine", "period_start", client=self.client_id,
                         period=msg.period_id, tokens=msg.tokens)
        # Close the previous grant episode's ledger account BEFORE
        # start_period replaces the token state, then open the new one.
        self._ledger_roll("period_start")
        self.tokens.start_period(msg.tokens)
        self._ledger_open(msg.tokens)
        self.completed_this_period = 0
        self.issued_this_period = 0
        self._throttled_this_period = False
        self._reporting_active = False
        if not self._started:
            self._started = True
            self._mgmt_start()
        # Final statistics are written shortly before the period ends so
        # the monitor can run Algorithm 1 at the boundary.
        final_at = self._period_end - self.config.final_report_margin
        if final_at > self.sim.now:
            self.sim.schedule_at(final_at, self._write_final_report, msg.period_id)
        if self.degraded:
            self._probe_pool()
        self._drain()

    def _roll_failure_window(self) -> None:
        """Fold the finished period into the failure streak (at period start)."""
        if self._period_faa_failed and not self._period_faa_ok:
            self._faa_failed_streak += 1
        elif self._period_faa_ok:
            self._faa_failed_streak = 0
        self._period_faa_failed = False
        self._period_faa_ok = False
        k = self.config.degraded_after
        if self.degraded:
            self.degraded_periods += 1
        elif k and self._faa_failed_streak >= k:
            self.degraded = True
            self.degraded_entries += 1
            self.degraded_periods += 1
            self.tracer.emit("engine", "degraded_enter", client=self.client_id,
                             streak=self._faa_failed_streak)

    def _on_report_request(self, msg: ReportRequest, _reply_qp) -> None:
        if msg.period_id != self.period_id or self._reporting_active:
            return
        self._reporting_active = True
        self.sim.schedule(0.0, self._reporting_tick, msg.period_id)

    def _on_alert(self, msg: ReservationAlert, _reply_qp) -> None:
        self.alerts_received += 1

    # ------------------------------------------------------------------
    # Data access (Fig. 3 flowchart)
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        if self.suspended:
            return  # failover in progress: submissions queue here
        if self._chain:
            self._drain_chain()
            return
        # Locals for the loop: neither the queue/token objects nor the
        # limit are replaced while draining (only at period boundaries),
        # so hoisting the attribute reads is safe.
        queue = self._queue
        tokens = self.tokens
        limit = self.limit
        while queue:
            if limit is not None and self.issued_this_period >= limit:
                if not self._throttled_this_period:
                    self._throttled_this_period = True
                    self.limit_throttle_events += 1
                return  # throttled until the next period
            if tokens.try_consume():
                key, on_complete, span = queue.popleft()
                self._issue(key, on_complete, span)
                continue
            # No token in hand: claim a batch from the global pool —
            # unless degraded, in which case only the reservation is
            # spent and recovery rides on the per-period probe.
            if (not self._faa_inflight and not self._retry_scheduled
                    and not self.degraded):
                self._fetch_global_batch()
            return

    def _issue(self, key: int, on_complete: IOCallback, span=None) -> None:
        self.issued_this_period += 1
        self.inflight_tokened += 1
        if span is not None:
            # Token wait ends here: everything before this boundary was
            # spent queueing inside the engine.
            span.mark("engine_queue", self.sim.now)

        if on_complete is self._last_on_complete:
            finish = self._last_finish
        else:
            def finish(ok: bool, value: object, latency: float) -> None:
                self.inflight_tokened -= 1
                self.completed_this_period += 1
                self.total_completed += 1
                telemetry = self.sim.telemetry
                if telemetry is not None:
                    telemetry.observe_latency("onesided_read", latency)
                self._notify_listener(ok)
                on_complete(ok, value, latency)

            self._last_on_complete = on_complete
            self._last_finish = finish

        try:
            self.kv.get_onesided(key, finish, touch_memory=self.touch_memory,
                                 span=span, sample=False)
        except QPError as err:
            if span is not None:
                span.finish(self.sim.now, ok=False, error=str(err))
            # Dead QP: fail the I/O through the normal completion path
            # (as an event, matching the asynchronous non-fault path).
            self.sim.schedule(0.0, finish, False, str(err), 0.0)

    def _drain_chain(self) -> None:
        """Chain-mode drain: collect every token-backed op, then post
        them as one doorbell-batched chain (fabric model active).

        Token/limit/FAA decisions are taken in exactly the order the
        per-op drain takes them; only the posting is batched, so a
        burst shares doorbells per ``FabricModel.doorbell_batch_limit``.
        """
        queue = self._queue
        tokens = self.tokens
        limit = self.limit
        wrs = []
        while queue:
            if limit is not None and self.issued_this_period >= limit:
                if not self._throttled_this_period:
                    self._throttled_this_period = True
                    self.limit_throttle_events += 1
                break
            if tokens.try_consume():
                key, on_complete, span = queue.popleft()
                wrs.append(self._chain_wr(key, on_complete, span))
                continue
            if (not self._faa_inflight and not self._retry_scheduled
                    and not self.degraded):
                self._fetch_global_batch()
            break
        if not wrs:
            return
        try:
            self.kv.qp.post_chain(wrs)
        except QPError as err:
            # Dead QP: fail every collected op through its completion
            # path (as events, matching the asynchronous non-fault path).
            now = self.sim.now
            for wr in wrs:
                if wr.span is not None:
                    wr.span.finish(now, ok=False, error=str(err))
                wc = WorkCompletion(
                    wr.wr_id, wr.opcode, WCStatus.FLUSH_ERROR,
                    None, now, now, str(err),
                )
                self.sim.schedule(0.0, wr.on_completion, wc)

    def _chain_wr(self, key: int, on_complete: IOCallback, span=None):
        """Per-op bookkeeping of :meth:`_issue`, returning the unposted
        WR instead of posting it (chain mode collects these)."""
        self.issued_this_period += 1
        self.inflight_tokened += 1
        if span is not None:
            span.mark("engine_queue", self.sim.now)
        if on_complete is self._last_on_complete:
            finish = self._last_finish
        else:
            def finish(ok: bool, value: object, latency: float) -> None:
                self.inflight_tokened -= 1
                self.completed_this_period += 1
                self.total_completed += 1
                telemetry = self.sim.telemetry
                if telemetry is not None:
                    telemetry.observe_latency("onesided_read", latency)
                self._notify_listener(ok)
                on_complete(ok, value, latency)

            self._last_on_complete = on_complete
            self._last_finish = finish
        return self.kv.get_onesided_wr(
            key, finish, touch_memory=self.touch_memory, span=span
        )

    def _notify_listener(self, ok: bool) -> None:
        listener = self.failure_listener
        if listener is not None:
            listener(ok)

    # ------------------------------------------------------------------
    # Telemetry plumbing (no-ops when no hub is attached to the sim)
    # ------------------------------------------------------------------
    def _control_span(self, kind: str):
        telemetry = self.sim.telemetry
        if telemetry is None:
            return None
        return telemetry.control_span(kind, self.kv.name)

    def _ledger_roll(self, reason: str) -> None:
        """Close the current grant episode's ledger account, if any.

        Must run *before* the token state is replaced: the closing
        balance reads the outgoing episode's spend/yield/residual.
        """
        account, self._ledger_account = self._ledger_account, None
        if account is None:
            return
        ledger = getattr(self.sim.telemetry, "ledger", None)
        if ledger is None:
            return
        ledger.close(
            account,
            spent=self.issued_this_period,
            yielded=self.tokens.yielded_tokens,
            residual=self.tokens.xi_res + self.tokens.local_global,
            reason=reason,
            time=self.sim.now,
        )

    def _ledger_open(self, granted: int) -> None:
        telemetry = self.sim.telemetry
        if telemetry is None or telemetry.ledger is None:
            return
        self._ledger_account = telemetry.ledger.open(
            self.kv.name, self.period_id, granted, self.sim.now,
        )

    def ledger_flush(self, reason: str = "run_end") -> None:
        """Close the open ledger account at end of run (conservation check)."""
        self._ledger_roll(reason)

    @property
    def token_obligations(self) -> int:
        """Tokens this client holds or has spent without a completion.

        This is what the engine reports as its "residual reservation":
        unspent reservation tokens (after the management clamp) plus
        unspent batched global tokens plus token-backed I/Os still in
        flight.  The monitor subtracts the sum of these from the
        remaining capacity during token conversion; counting in-flight
        work prevents the pool from double-booking capacity already
        owed to queued I/Os.  For the paper's completion-gated clients
        the in-flight term is negligible and this reduces exactly to
        the paper's residual-reservation report.
        """
        return self.tokens.residual + self.tokens.local_global + self.inflight_tokened

    def _fetch_global_batch(self) -> None:
        batch = self.config.batch_size
        self._faa_epoch += 1
        epoch = self._faa_epoch
        wr = WorkRequest(
            opcode=OpType.FETCH_ADD,
            remote_addr=self.layout.pool_addr,
            rkey=self.layout.rkey,
            add_value=-batch,
            control=True,
            span=self._control_span("control_faa"),
            on_completion=lambda wc: self._on_faa_complete(wc, epoch),
        )
        self._faa_inflight = True
        self.faa_issued += 1
        try:
            self.kv.qp.post_send(wr)
        except QPError as err:
            self._faa_inflight = False
            if wr.span is not None:
                wr.span.finish(self.sim.now, ok=False, error=str(err))
            self._note_faa_failure()
            return
        self.sim.schedule(self.config.resolved_control_deadline,
                          self._control_deadline, epoch)

    def _on_faa_complete(self, wc: WorkCompletion, epoch: int) -> None:
        if not self._faa_inflight or epoch != self._faa_epoch:
            # Completed after its deadline already failed it.  Any
            # tokens the FAA did claim are abandoned; the monitor's
            # conversion overwrite re-absorbs them into the pool.
            return
        self._faa_inflight = False
        if not wc.ok:
            # A transient fabric/NIC failure must not wedge the data
            # path: count it and retry with capped exponential backoff.
            self._note_faa_failure()
            return
        self._period_faa_ok = True
        self._retry_attempt = 0
        self._notify_listener(True)
        prior = to_signed64(wc.value)
        granted = self.tokens.grant_from_pool(prior, self.config.batch_size)
        self.faa_granted_tokens += granted
        telemetry = self.sim.telemetry
        if (telemetry is not None and telemetry.ledger is not None
                and self._ledger_account is not None):
            telemetry.ledger.pool_claim(
                self._ledger_account, self.config.batch_size, granted,
                prior, self.sim.now,
            )
        self.tracer.emit("engine", "faa", client=self.client_id,
                         prior=prior, granted=granted)
        if granted > 0:
            self._drain()
            return
        # Pool exhausted: wait for conversion or the next period (step
        # T4).  Not a failure — the transport worked — so the paper's
        # fixed retry interval applies, not backoff.
        self.faa_pool_empty += 1
        self._retry_scheduled = True
        self.sim.schedule(self.config.faa_retry_interval, self._retry_fetch)

    def _control_deadline(self, epoch: int) -> None:
        if not self._faa_inflight or epoch != self._faa_epoch:
            return  # completed (or was superseded) in time
        self._faa_inflight = False
        self.faa_timeouts += 1
        self._note_faa_failure()

    def _note_faa_failure(self) -> None:
        self.faa_failures += 1
        self._period_faa_failed = True
        self._notify_listener(False)
        self._schedule_backoff_retry()

    def _schedule_backoff_retry(self) -> None:
        if self._retry_scheduled:
            return
        cfg = self.config
        delay = min(
            cfg.resolved_backoff_cap,
            cfg.faa_retry_interval * cfg.faa_backoff_factor ** self._retry_attempt,
        )
        delay *= 0.5 + 0.5 * self._backoff_rng.random()
        self._retry_attempt += 1
        self._retry_scheduled = True
        self.sim.schedule(delay, self._retry_fetch)

    def _retry_fetch(self) -> None:
        self._retry_scheduled = False
        self._drain()

    # ------------------------------------------------------------------
    # Degraded local-only mode
    # ------------------------------------------------------------------
    def _probe_pool(self) -> None:
        """Zero-add FETCH_ADD: tests pool reachability without taking tokens."""
        if self._faa_inflight:
            return
        self._faa_epoch += 1
        epoch = self._faa_epoch
        wr = WorkRequest(
            opcode=OpType.FETCH_ADD,
            remote_addr=self.layout.pool_addr,
            rkey=self.layout.rkey,
            add_value=0,
            control=True,
            span=self._control_span("control_probe"),
            on_completion=lambda wc: self._on_probe_complete(wc, epoch),
        )
        self._faa_inflight = True
        self.probes_issued += 1
        try:
            self.kv.qp.post_send(wr)
        except QPError as err:
            self._faa_inflight = False
            if wr.span is not None:
                wr.span.finish(self.sim.now, ok=False, error=str(err))
            self.faa_failures += 1
            self._period_faa_failed = True
            self._notify_listener(False)
            return
        self.sim.schedule(self.config.resolved_control_deadline,
                          self._control_deadline, epoch)

    def _on_probe_complete(self, wc: WorkCompletion, epoch: int) -> None:
        if not self._faa_inflight or epoch != self._faa_epoch:
            return
        self._faa_inflight = False
        if not wc.ok:
            self.faa_failures += 1
            self._period_faa_failed = True
            self._notify_listener(False)
            return
        # Fabric is back: leave degraded mode and resume pool fetches.
        self._notify_listener(True)
        self._period_faa_ok = True
        self._retry_attempt = 0
        self._faa_failed_streak = 0
        self.degraded = False
        self.degraded_recoveries += 1
        self.tracer.emit("engine", "degraded_recover", client=self.client_id,
                         period=self.period_id)
        self._drain()

    # ------------------------------------------------------------------
    # Token-management thread
    # ------------------------------------------------------------------
    # Direct self-rescheduling callbacks replaced the original
    # generator threads here: a per-tick generator resume plus a fresh
    # Timeout/Event pair per tick is pure overhead when the tick body is
    # three lines.  The callback chain makes schedule calls at exactly
    # the positions the generator machinery did (spawn scheduled a
    # +0.0 resume; the first resume scheduled tick 1 at +interval; each
    # tick runs its body, then schedules the next), so the simulator's
    # seq counter — and with it every same-timestamp tie-break — is
    # allocated identically and runs stay bit-identical (enforced by
    # repro.cluster.determinism).
    def _mgmt_start(self) -> None:
        self.sim.schedule(0.0, self._mgmt_arm)

    def _mgmt_arm(self) -> None:
        self.sim.schedule(self.config.mgmt_interval, self._mgmt_tick)

    def _mgmt_tick(self) -> None:
        interval = self.config.mgmt_interval
        self.tokens.decay(interval)
        self.sim.schedule(interval, self._mgmt_tick)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _reporting_tick(self, period_id: int) -> None:
        if not self._reporting_active or self.period_id != period_id:
            return
        self._write_report(self.layout.report_live_addr)
        self.sim.schedule(self.config.report_interval,
                          self._reporting_tick, period_id)

    def _write_report(self, addr: int) -> None:
        word = pack_report(self.token_obligations, self.completed_this_period)
        wr = WorkRequest(
            opcode=OpType.WRITE,
            size=8,
            remote_addr=addr,
            rkey=self.layout.rkey,
            payload=word.to_bytes(8, "little"),
            control=True,
        )
        try:
            self.kv.qp.post_send(wr)  # fire-and-forget: completion unclaimed
        except QPError:
            self.reports_failed += 1
            return
        self.reports_written += 1
        self.tracer.emit("engine", "report", client=self.client_id,
                         residual=self.token_obligations,
                         completed=self.completed_this_period)

    def _write_final_report(self, period_id: int) -> None:
        if self.period_id != period_id:
            return
        self._write_report(self.layout.report_final_addr)

    # ------------------------------------------------------------------
    # Metrics registry integration
    # ------------------------------------------------------------------
    # The per-engine fields robustness_summary exposes, in its order.
    SUMMARY_FIELDS = (
        "faa_failures",
        "faa_timeouts",
        "faa_pool_empty",
        "probes_issued",
        "reports_failed",
        "degraded",
        "degraded_entries",
        "degraded_periods",
        "degraded_recoveries",
        "re_registrations",
        "stale_control_messages",
        "generation_resyncs",
    )

    def metrics_items(self):
        """``(name, getter)`` pairs for the telemetry metrics registry."""
        items = [
            (f"engine_{field}", lambda f=field: getattr(self, f))
            for field in self.SUMMARY_FIELDS
        ]
        items.extend([
            ("engine_total_submitted", lambda: self.total_submitted),
            ("engine_total_completed", lambda: self.total_completed),
            ("engine_queue_depth", lambda: len(self._queue)),
            ("engine_inflight_tokened", lambda: self.inflight_tokened),
            ("engine_faa_issued", lambda: self.faa_issued),
            ("engine_faa_granted_tokens", lambda: self.faa_granted_tokens),
            ("engine_reports_written", lambda: self.reports_written),
            ("engine_alerts_received", lambda: self.alerts_received),
            ("engine_limit_throttle_events",
             lambda: self.limit_throttle_events),
        ])
        return items
