"""Haechi reproduction: token-based QoS for one-sided RDMA storage.

A full, from-scratch reproduction of *"Haechi: A Token-based QoS
Mechanism for One-sided I/Os in RDMA based Storage System"* (Liu &
Varman, ICDCS 2021) on a discrete-event-simulated RDMA cluster.

Quick start::

    from repro import (
        QoSMode, RequestPattern, SimScale, build_cluster, attach_app,
        run_experiment, uniform_distribution,
    )

    scale = SimScale(factor=200)
    reservations = uniform_distribution(total=1_413_000, num_clients=10)
    cluster = build_cluster(10, QoSMode.HAECHI, reservations, scale=scale)
    for client in cluster.clients:
        attach_app(cluster, client, RequestPattern.BURST, demand_ops=500_000)
    result = run_experiment(cluster, warmup_periods=2, measure_periods=10)
    print(result.total_kiops(), "KIOPS")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.common.types import AccessMode, QoSMode
from repro.core import (
    AdaptiveCapacityEstimator,
    AdmissionController,
    HaechiConfig,
    ProfiledCapacity,
    QoSEngine,
    QoSMonitor,
)
from repro.cluster import (
    CHAMELEON,
    Cluster,
    ExperimentResult,
    SimScale,
    build_cluster,
    run_experiment,
    run_profiling,
)
from repro.cluster.experiment import attach_app
from repro.workloads import (
    RequestPattern,
    spike_distribution,
    uniform_distribution,
    zipf_group_distribution,
)

__version__ = "1.0.0"

__all__ = [
    "AccessMode",
    "AdaptiveCapacityEstimator",
    "AdmissionController",
    "CHAMELEON",
    "Cluster",
    "ExperimentResult",
    "HaechiConfig",
    "ProfiledCapacity",
    "QoSEngine",
    "QoSMode",
    "QoSMonitor",
    "RequestPattern",
    "SimScale",
    "attach_app",
    "build_cluster",
    "run_experiment",
    "run_profiling",
    "spike_distribution",
    "uniform_distribution",
    "zipf_group_distribution",
    "__version__",
]
