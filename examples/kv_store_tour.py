#!/usr/bin/env python3
"""A tour of the substrate: the Telepathy-style KV store over simulated
RDMA, without any QoS on top.

Demonstrates the one-sided datapath (client-computed addressing, RDMA
READ/WRITE, zero data-node CPU), the two-sided RPC path, and a YCSB
workload-B mix with data verification.

Run:  python examples/kv_store_tour.py
"""

from repro.kvstore import DataNode, KVClient
from repro.rdma import Fabric, Host, NICProfile
from repro.rdma.cpu import CPUProfile
from repro.rdma.dispatch import TypeDispatcher
from repro.sim import Simulator
from repro.workloads.ycsb import WORKLOAD_B, YCSBWorkload

NUM_RECORDS = 256


def build():
    sim = Simulator()
    fabric = Fabric(sim)
    profile = NICProfile.chameleon()
    server = fabric.add_host(Host(sim, "server", profile, CPUProfile()))
    node = DataNode(server, num_slots=NUM_RECORDS, materialize=True)
    host = fabric.add_host(Host(sim, "client", profile, CPUProfile()))
    qp, _ = fabric.connect(host, server)
    dispatcher = TypeDispatcher()
    host.set_rpc_handler(dispatcher)
    kv = KVClient("client", qp, dispatcher)
    return sim, node, kv


def main() -> None:
    sim, node, kv = build()

    # 1. connection handshake: fetch the store layout over two-sided RDMA
    kv.connect(lambda: print(
        f"connected: {kv.layout.num_slots} slots of "
        f"{kv.layout.slot_size} B at {kv.layout.base_addr:#x} "
        f"(rkey {kv.data_rkey:#x})"
    ))
    sim.run(until=0.001)

    # 2. one-sided read: the client computes the remote address itself
    latencies = {}
    kv.get_onesided(42, lambda ok, val, lat: latencies.update(one=(val, lat)))
    sim.run(until=0.002)
    (version, payload), latency = latencies["one"]
    print(f"one-sided GET(42): v{version} {payload[:12]!r} "
          f"in {latency*1e6:.2f} us, server CPU requests served: "
          f"{node.host.cpu.requests_served}")

    # 3. two-sided read: same record through the server CPU
    kv.get_twosided(42, lambda ok, val, lat: latencies.update(two=(val, lat)))
    sim.run(until=0.003)
    (_, _), latency2 = latencies["two"]
    print(f"two-sided GET(42): {latency2*1e6:.2f} us, server CPU requests "
          f"served: {node.host.cpu.requests_served}")

    # 4. one-sided write, then verify through the other path
    kv.put_onesided(7, b"updated by RDMA WRITE",
                    lambda ok, val, lat: None)
    sim.run(until=0.004)
    kv.get_twosided(7, lambda ok, val, lat: print(
        f"read-your-write via RPC: {val[1][:21]!r}"
    ))
    sim.run(until=0.005)

    # 5. a YCSB workload-B mix (95% reads / 5% updates, zipfian keys)
    workload = YCSBWorkload(WORKLOAD_B, item_count=NUM_RECORDS, seed=7)
    stats = {"read": 0, "update": 0, "failed": 0}

    def done(ok, _value, _latency):
        if not ok:
            stats["failed"] += 1

    for op, key in workload.stream(2000):
        if op == "read":
            stats["read"] += 1
            kv.get_onesided(key, done)
        else:
            stats["update"] += 1
            kv.put_onesided(key, f"ycsb-update-{key}".encode(), done)
    sim.run()
    print(f"YCSB-B replay: {stats['read']} reads, {stats['update']} updates, "
          f"{stats['failed']} failures")
    print(f"server CPU served {node.host.cpu.requests_served} RPCs total — "
          "the 2000-op YCSB replay added none (all one-sided).")


if __name__ == "__main__":
    main()
