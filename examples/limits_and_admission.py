#!/usr/bin/env python3
"""Limits (L_i) and admission control — the contract's other half.

Shows the three enforcement points Haechi adds around reservations:

1. admission control rejects a tenant whose reservation would violate
   the aggregate (sum R_i <= T*C_G) or local (R_i <= T*C_L) capacity
   constraints (Definition 2);
2. a limit caps a tenant's throughput even when spare capacity exists
   (rate limiting for cost-capped tenants);
3. the system idles rather than serve past every tenant's limit.

Run:  python examples/limits_and_admission.py
"""

from repro import (
    AdmissionController,
    QoSMode,
    RequestPattern,
    SimScale,
    attach_app,
    build_cluster,
    run_experiment,
)
from repro.common.errors import AdmissionError

SCALE = SimScale(factor=200, interval_divisor=200)


def demo_admission() -> None:
    print("-- admission control (Definition 2) --")
    admission = AdmissionController(
        global_tokens_per_period=1_570_000, local_tokens_per_period=400_000
    )
    for tenant in (1, 2, 3, 4):
        admission.admit(tenant, 390_000)
    print("admitted four tenants at 390 KIOPS each "
          f"(headroom {admission.headroom/1000:.0f}K)")
    try:
        admission.admit(5, 500_000)
    except AdmissionError as err:
        print(f"tenant 5 rejected: {err}")
    try:
        admission.admit(6, 390_000)
    except AdmissionError as err:
        print(f"tenant 6 rejected: {err}")
    admission.release(4)
    admission.admit(6, 390_000)
    print("tenant 4 left; tenant 6 admitted into the freed capacity")


def demo_limits() -> None:
    print("\n-- limits --")
    reservations = [100_000, 100_000, 100_000]
    limits = [150_000, None, None]  # tenant 1 is cost-capped
    cluster = build_cluster(
        num_clients=3,
        qos_mode=QoSMode.HAECHI,
        reservations_ops=reservations,
        limits_ops=limits,
        scale=SCALE,
    )
    for client in cluster.clients:
        attach_app(cluster, client, RequestPattern.BURST,
                   demand_ops=600_000, window=None)
    result = run_experiment(cluster, warmup_periods=2, measure_periods=6)
    for i in range(3):
        name = f"C{i+1}"
        cap = f"limit {limits[i]/1000:.0f}K" if limits[i] else "no limit"
        print(f"{name}: reserved 100K, {cap:<11} -> "
              f"{result.client_kiops(name):.0f} KIOPS")
    capped = result.client_kiops("C1") * 1000
    assert capped <= limits[0] * 1.02, "limit enforcement regressed"
    print("tenant C1 was throttled at its limit; C2/C3 split the remainder.")


if __name__ == "__main__":
    demo_admission()
    demo_limits()
