#!/usr/bin/env python3
"""Adaptive capacity estimation riding out a congestion event (Set 4).

A rate-controlled background job (outside Haechi's domain — the monitor
cannot see it) starts injecting one-sided reads at period 10 and stops
at period 25.  The monitor's Algorithm-1 estimator walks the token
budget down after the hit and climbs back by eta-sized increments after
the relief, keeping reservations intact through both transitions.

Run:  python examples/capacity_adaptation.py
"""

from repro import (
    QoSMode,
    RequestPattern,
    SimScale,
    attach_app,
    build_cluster,
    run_experiment,
    uniform_distribution,
)

SCALE = SimScale(factor=200, interval_divisor=200)
CAPACITY = 1_570_000
RESERVATIONS = uniform_distribution(0.8 * CAPACITY, num_clients=10)
BG_RATE = 200_000  # ops/s of invisible background traffic
PERIODS = 35
CONGESTION = (10, 25)  # periods (after warm-up) the background job runs


def main() -> None:
    cluster = build_cluster(
        num_clients=10,
        qos_mode=QoSMode.HAECHI,
        reservations_ops=RESERVATIONS,
        scale=SCALE,
    )
    for i, client in enumerate(cluster.clients):
        attach_app(cluster, client, RequestPattern.BURST,
                   demand_ops=RESERVATIONS[i] + 0.2 * CAPACITY, window=None)
    warmup = 2
    period = cluster.config.period
    cluster.add_background_job(
        schedule=[((CONGESTION[0] + warmup) * period,
                   (CONGESTION[1] + warmup) * period)],
        rate_ops=BG_RATE,
    )
    result = run_experiment(cluster, warmup_periods=warmup,
                            measure_periods=PERIODS)

    estimates = [
        cluster.scale.kiops(v) for v in cluster.monitor.estimator.history
    ]
    print("period  throughput  estimate  phase")
    for i, total in enumerate(result.total_kiops_series()):
        if CONGESTION[0] <= i < CONGESTION[1]:
            phase = "CONGESTED"
        elif i < CONGESTION[0]:
            phase = "clean"
        else:
            phase = "recovering"
        estimate = estimates[min(i + warmup, len(estimates) - 1)]
        bar = "#" * int(total / 40)
        print(f"{i+1:>6} {total:>9.0f}K {estimate:>8.0f}K  {phase:<10} {bar}")

    print()
    print(f"background job injected {BG_RATE/1000:.0f} KIOPS the monitor "
          "never saw directly;")
    print("the estimator inferred the change purely from the clients' "
          "reported completions.")


if __name__ == "__main__":
    main()
