#!/usr/bin/env python3
"""Quickstart: deploy Haechi on a simulated RDMA cluster and watch it
enforce reservations.

Builds the paper's testbed shape (1 data node, 10 clients), gives the
clients a skewed (Zipf) reservation distribution over 90% of the
1570-KIOPS data-node capacity, drives every client with more demand
than it reserved, and prints per-client throughput against the
reservations.

Run:  python examples/quickstart.py [--scale 200] [--periods 10]
"""

import argparse

from repro import (
    QoSMode,
    RequestPattern,
    SimScale,
    attach_app,
    build_cluster,
    run_experiment,
    zipf_group_distribution,
)

CAPACITY = 1_570_000  # the calibrated data-node capacity, ops/s


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=200,
                        help="time-dilation factor K (default 200)")
    parser.add_argument("--periods", type=int, default=10,
                        help="measured QoS periods (default 10)")
    args = parser.parse_args()

    scale = SimScale(factor=args.scale, interval_divisor=200)
    reservations = zipf_group_distribution(0.9 * CAPACITY, num_clients=10)

    cluster = build_cluster(
        num_clients=10,
        qos_mode=QoSMode.HAECHI,
        reservations_ops=reservations,
        scale=scale,
    )
    for i, client in enumerate(cluster.clients):
        # every client wants its reservation plus the whole global pool
        attach_app(
            cluster,
            client,
            RequestPattern.BURST,
            demand_ops=reservations[i] + 0.1 * CAPACITY,
            window=None,  # token-paced: the engine's tokens are the flow control
        )

    result = run_experiment(cluster, warmup_periods=3,
                            measure_periods=args.periods)

    print(f"{'client':>7} {'reservation':>12} {'throughput':>11} {'met?':>5}")
    for i, reservation in enumerate(reservations):
        name = f"C{i+1}"
        kiops = result.client_kiops(name)
        met = "yes" if kiops * 1000 >= reservation * 0.99 else "NO"
        print(f"{name:>7} {reservation/1000:>10.0f}K {kiops:>10.0f}K {met:>5}")
    print(f"\nsystem throughput: {result.total_kiops():.0f} KIOPS "
          f"(saturated capacity ~1570 KIOPS)")
    print("every client received at least its reservation; the rest of the")
    print("capacity was handed out through the shared global token pool.")


if __name__ == "__main__":
    main()
