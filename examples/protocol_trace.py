#!/usr/bin/env python3
"""Watch the Haechi protocol work, event by event.

Runs two QoS periods with two clients — one that exhausts its
reservation and raids the global pool, one that under-uses and gets
clamped — with a structured tracer attached to the engine and monitor.
Prints the protocol narrative: token dispatch, the first batched FAA,
the monitor noticing the pool move, reporting, token conversion, and
the end-of-period capacity estimate.

Run:  python examples/protocol_trace.py
"""

from repro import QoSMode, SimScale, build_cluster
from repro.sim.trace import Tracer

SCALE = SimScale(factor=1000, interval_divisor=50)


def main() -> None:
    cluster = build_cluster(
        num_clients=2,
        qos_mode=QoSMode.HAECHI,
        reservations_ops=[300_000, 300_000],
        scale=SCALE,
    )
    tracer = Tracer(cluster.sim)
    cluster.monitor.tracer = tracer
    for client in cluster.clients:
        client.engine.tracer = tracer

    cluster.start()
    period = cluster.config.period
    sim = cluster.sim
    sim.run(until=0.02 * period)

    greedy, lazy = cluster.clients[0].engine, cluster.clients[1].engine
    for key in range(900):  # way past the 300-token reservation
        greedy.submit(key % 16, lambda ok, v, l: None)
    for key in range(100):  # under-uses its reservation
        lazy.submit(key % 16, lambda ok, v, l: None)
    sim.run(until=2 * period)

    interesting = {
        "monitor.period_begin", "monitor.reporting_triggered",
        "monitor.estimate", "engine.period_start",
    }
    # conversions and FAAs fire every tick/batch; show only the first few
    budgets = {"monitor.conversion": 3, "engine.faa": 5}
    for record in tracer.records:
        tag = f"{record.category}.{record.event}"
        if tag in budgets:
            if budgets[tag] <= 0:
                continue
            budgets[tag] -= 1
        elif tag not in interesting:
            continue
        print(record)

    print()
    summary = tracer.summary()
    print("event counts over two periods:")
    for name in sorted(summary):
        print(f"  {name:<28} {summary[name]}")
    print()
    print(f"greedy client completed {greedy.total_completed} I/Os "
          f"({greedy.faa_issued} pool FAAs, "
          f"{greedy.faa_granted_tokens} tokens granted)")
    print(f"lazy client completed {lazy.total_completed} I/Os and yielded "
          f"{lazy.tokens.yielded_tokens} unused reservation tokens")


if __name__ == "__main__":
    main()
