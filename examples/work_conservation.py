#!/usr/bin/env python3
"""Work conservation: what token conversion buys you (Experiment 2B).

Two high-reservation tenants go quiet halfway through their contracted
rate every period.  *Basic Haechi* (static token assignment) lets their
unused reservations rot; full Haechi's monitor notices the silence
through the clients' 64-bit reports and converts the idle reservations
into global tokens that the busy tenants immediately claim.

Run:  python examples/work_conservation.py
"""

from repro import (
    QoSMode,
    RequestPattern,
    SimScale,
    attach_app,
    build_cluster,
    run_experiment,
    zipf_group_distribution,
)

SCALE = SimScale(factor=200, interval_divisor=200)
CAPACITY = 1_570_000
RESERVATIONS = zipf_group_distribution(0.9 * CAPACITY, num_clients=10)


def run(qos_mode):
    cluster = build_cluster(
        num_clients=10,
        qos_mode=qos_mode,
        reservations_ops=RESERVATIONS,
        scale=SCALE,
    )
    for i, client in enumerate(cluster.clients):
        if i < 2:
            demand = RESERVATIONS[i] * 0.5  # quiet tenants
        else:
            demand = RESERVATIONS[i] + 0.1 * CAPACITY  # greedy tenants
        attach_app(cluster, client, RequestPattern.BURST,
                   demand_ops=demand, window=None)
    return run_experiment(cluster, warmup_periods=3, measure_periods=8)


def main() -> None:
    full = run(QoSMode.HAECHI)
    basic = run(QoSMode.BASIC_HAECHI)

    print("client  reserved   demand    Basic   Haechi    gain")
    for i, reservation in enumerate(RESERVATIONS):
        name = f"C{i+1}"
        demand = reservation * 0.5 if i < 2 else reservation + 0.1 * CAPACITY
        b = basic.client_kiops(name)
        h = full.client_kiops(name)
        print(f"{name:>6} {reservation/1000:>8.0f}K {demand/1000:>7.0f}K "
              f"{b:>7.0f}K {h:>7.0f}K {h-b:>+6.0f}K")
    print(f"{'total':>6} {'':>18} {basic.total_kiops():>7.0f}K "
          f"{full.total_kiops():>7.0f}K "
          f"{full.total_kiops()-basic.total_kiops():>+6.0f}K")
    print()
    recovered = full.total_kiops() - basic.total_kiops()
    print(f"token conversion recovered ~{recovered:.0f} KIOPS of capacity that")
    print("Basic Haechi left stranded in the quiet tenants' reservations.")


if __name__ == "__main__":
    main()
