#!/usr/bin/env python3
"""Haechi across multiple data nodes (the paper's future-work section).

Four storage-heavy tenants and six light ones stripe their keys across
two data nodes.  Each node runs its own monitor enforcing half of every
tenant's aggregate reservation; the cluster's usable capacity grows past
a single node's 1570 KIOPS while all twenty per-node contracts (and so
all ten aggregate ones) hold.

Run:  python examples/multi_data_node.py
"""

from repro.cluster.multinode import build_multinode_cluster
from repro.cluster.scale import SimScale

SCALE = SimScale(factor=300, interval_divisor=150)
RESERVATIONS = [280_000] * 4 + [160_000] * 6
DEMANDS = [370_000] * 4 + [230_000] * 6


def main() -> None:
    cluster = build_multinode_cluster(
        num_nodes=2,
        num_clients=10,
        reservations_ops=RESERVATIONS,
        scale=SCALE,
    )
    for i, client in enumerate(cluster.clients):
        cluster.attach_burst_app(client, demand_ops=DEMANDS[i])
    cluster.start()

    period = cluster.config.period
    cluster.sim.run(until=3 * period)
    cluster.metrics.reset_window()
    cluster.sim.run(until=cluster.sim.now + 8 * period)

    print("tenant  aggregate-reservation  served   met?")
    total = 0.0
    for i in range(10):
        name = f"C{i+1}"
        metrics = cluster.metrics.clients[name]
        kiops = (sum(metrics.period_counts) / len(metrics.period_counts)
                 / period / 1000.0)
        total += kiops
        met = "yes" if kiops * 1000 >= RESERVATIONS[i] * 0.98 else "NO"
        print(f"{name:>6} {RESERVATIONS[i]/1000:>20.0f}K {kiops:>7.0f}K {met:>5}")
    print(f"\naggregate throughput: {total:.0f} KIOPS across 2 data nodes")
    print("(a single data node saturates at 1570 KIOPS)")
    for node in cluster.nodes:
        print(f"  {node.host.name}: estimator at "
              f"{cluster.scale.kiops(node.monitor.estimator.current):.0f} "
              "KIOPS/period")


if __name__ == "__main__":
    main()
