#!/usr/bin/env python3
"""The paper's motivating scenario: one-sided I/O is *silent*, so a
bare data node cannot differentiate tenants — Haechi can.

Two tenants share a data node over one-sided RDMA:

- a latency-critical OLTP front end that paid for 300 KIOPS, and
- a batch analytics scraper that reserved only 60 KIOPS but issues as
  fast as it can.

On the bare system the NIC splits capacity by request pressure and the
OLTP tenant starves.  With Haechi the same workloads get exactly the
contracted split, and the scraper still soaks up every token the OLTP
tenant does not use.

Run:  python examples/reservation_guarantee.py
"""

from repro import (
    QoSMode,
    RequestPattern,
    SimScale,
    attach_app,
    build_cluster,
    run_experiment,
)

SCALE = SimScale(factor=200, interval_divisor=200)
OLTP_RESERVATION = 300_000
SCRAPER_RESERVATION = 60_000
# six scraper nodes vs one OLTP node, everyone greedy.  The OLTP demand
# stays under the 400-KIOPS single-client limit so it never builds a
# standing posting backlog; the scrapers ask for far more than their share.
RESERVATIONS = [OLTP_RESERVATION] + [SCRAPER_RESERVATION] * 6
DEMANDS = [380_000] + [450_000] * 6


def run(qos_mode):
    reservations = RESERVATIONS if qos_mode is not QoSMode.BARE else None
    cluster = build_cluster(
        num_clients=len(RESERVATIONS),
        qos_mode=qos_mode,
        reservations_ops=reservations,
        scale=SCALE,
    )
    for i, client in enumerate(cluster.clients):
        window = None if qos_mode is not QoSMode.BARE else 64
        attach_app(cluster, client, RequestPattern.BURST,
                   demand_ops=DEMANDS[i], window=window)
    return run_experiment(cluster, warmup_periods=3, measure_periods=8)


def main() -> None:
    bare = run(QoSMode.BARE)
    haechi = run(QoSMode.HAECHI)

    print("tenant            reserved      bare    Haechi")
    rows = [("oltp-frontend", OLTP_RESERVATION, "C1")] + [
        (f"scraper-{i}", SCRAPER_RESERVATION, f"C{i+1}") for i in range(1, 7)
    ]
    for label, reservation, name in rows:
        print(f"{label:<15} {reservation/1000:>8.0f}K "
              f"{bare.client_kiops(name):>8.0f}K "
              f"{haechi.client_kiops(name):>8.0f}K")
    print(f"{'total':<15} {'':>9} {bare.total_kiops():>8.0f}K "
          f"{haechi.total_kiops():>8.0f}K")

    oltp = haechi.client_kiops("C1") * 1000
    print()
    if oltp >= OLTP_RESERVATION * 0.99:
        print("Haechi held the OLTP tenant at its contracted 300 KIOPS even")
        print("though the data-node CPU never saw a single one of its reads.")
    else:  # pragma: no cover - indicates a regression
        print("WARNING: the OLTP tenant missed its reservation!")


if __name__ == "__main__":
    main()
