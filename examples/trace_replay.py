#!/usr/bin/env python3
"""Record a YCSB trace, archive it, and replay it under Haechi.

The paper's methodology replays YCSB-generated 4 KB reads.  This
example makes the pipeline explicit: generate a zipfian read trace with
Poisson arrivals, save it to disk (JSON lines), reload it, and replay
it bit-identically through a QoS engine — twice, to show the replay is
deterministic.

Run:  python examples/trace_replay.py
"""

import os
import tempfile

from repro import QoSMode, SimScale, build_cluster
from repro.workloads.trace import (
    TraceReplayApp,
    jitter_trace,
    load_trace,
    record_trace,
    save_trace,
)
from repro.workloads.ycsb import WORKLOAD_PAPER, YCSBWorkload

SCALE = SimScale(factor=500, interval_divisor=100)
RATE = 250_000  # ops/s at paper scale
OPS = 3000


def replay_once(trace):
    cluster = build_cluster(
        num_clients=1,
        qos_mode=QoSMode.HAECHI,
        reservations_ops=[300_000],
        scale=SCALE,
        num_slots=4096,
    )
    cluster.start()
    latencies = []
    # the trace is recorded in experiment (dilated) time already
    app = TraceReplayApp(
        cluster.sim,
        trace,
        submit=cluster.clients[0].engine.submit,
        time_scale=1.0,
        on_complete=lambda ok, lat: latencies.append(lat),
    )
    cluster.sim.run(until=cluster.sim.now + 20 * cluster.config.period)
    return app, latencies


def main() -> None:
    workload = YCSBWorkload(WORKLOAD_PAPER, item_count=4096, seed=42)
    trace = jitter_trace(
        record_trace(workload, count=OPS, rate_ops=RATE), seed=42
    )
    periods = trace[-1].time / (1.0 / SCALE.factor)
    print(f"recorded {len(trace)} zipfian reads at {RATE/1000:.0f} KIOPS "
          f"(Poisson arrivals spanning {periods:.1f} QoS periods)")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "ycsb_read.trace.jsonl")
        save_trace(trace, path)
        size = os.path.getsize(path)
        print(f"archived to {os.path.basename(path)} ({size/1024:.1f} KiB)")
        reloaded = load_trace(path)
        assert reloaded == trace

    app1, lat1 = replay_once(reloaded)
    app2, lat2 = replay_once(reloaded)
    mean1 = sum(lat1) / len(lat1) * 1e6
    print(f"replay #1: {app1.completed}/{len(trace)} completed, "
          f"mean latency {mean1:.1f} us")
    print(f"replay #2: identical = {lat1 == lat2}")
    assert lat1 == lat2, "replays must be deterministic"
    print("the archived trace reproduces the experiment exactly — the")
    print("property the paper's 'replay YCSB' methodology relies on.")


if __name__ == "__main__":
    main()
