#!/usr/bin/env python3
"""Realistic multi-tenant serving: YCSB workloads under Haechi.

Three tenant classes share one data node, each replaying a different
YCSB key distribution over its own slice of the keyspace:

- ``search-index`` — zipfian reads (hot head), big reservation;
- ``session-cache`` — "latest" reads (recency-skewed), medium;
- ``batch-export``  — uniform scans, small reservation but greedy.

Key skew changes *which* slots are read, not what a 4 KB one-sided READ
costs, so Haechi's guarantees must be insensitive to it — this example
checks exactly that, while also verifying data integrity end-to-end
(the store is materialized and every payload is validated).

Run:  python examples/ycsb_tenants.py
"""

from repro import (
    QoSMode,
    RequestPattern,
    SimScale,
    attach_app,
    build_cluster,
    run_experiment,
)
from repro.workloads.ycsb import (
    LatestGenerator,
    UniformGenerator,
    ZipfianGenerator,
)

SCALE = SimScale(factor=500, interval_divisor=100)
SLOTS = 600  # materialized store: 3 tenants x 200 keys
TENANTS = [
    ("search-index", 250_000, ZipfianGenerator(200, seed=11), 0),
    ("session-cache", 150_000, LatestGenerator(200, seed=22), 200),
    ("batch-export", 80_000, UniformGenerator(200, seed=33), 400),
]
DEMAND = 390_000  # everyone greedy, below the 400 K client NIC limit


def main() -> None:
    cluster = build_cluster(
        num_clients=len(TENANTS),
        qos_mode=QoSMode.HAECHI,
        reservations_ops=[r for _, r, _, _ in TENANTS],
        scale=SCALE,
        num_slots=SLOTS,
        materialize=True,
        touch_memory=True,  # real bytes move; payloads are verified
    )

    bad_payloads = []

    def make_key_fn(generator, base):
        return lambda: base + generator.next()

    for i, (name, _res, generator, base) in enumerate(TENANTS):
        attach_app(
            cluster,
            cluster.clients[i],
            RequestPattern.BURST,
            demand_ops=DEMAND,
            window=None,
            key_fn=make_key_fn(generator, base),
        )

        # wrap the engine's completion path to verify record contents
        engine = cluster.clients[i].engine
        original_submit = engine.submit

        def submit(key, cb, _orig=original_submit):
            def checked(ok, value, latency):
                if ok and value is not None:
                    version, payload = value
                    if not payload.startswith(b"value-"):
                        bad_payloads.append(payload[:16])
                cb(ok, value, latency)
            _orig(key, checked)

        cluster.clients[i].engine = engine
        cluster.clients[i].app.submit = submit

    result = run_experiment(cluster, warmup_periods=2, measure_periods=6)

    print("tenant          distribution  reserved   served   met?")
    for i, (name, reservation, generator, _base) in enumerate(TENANTS):
        kiops = result.client_kiops(f"C{i+1}")
        met = "yes" if kiops * 1000 >= reservation * 0.99 else "NO"
        dist = type(generator).__name__.replace("Generator", "").lower()
        print(f"{name:<15} {dist:>12} {reservation/1000:>8.0f}K "
              f"{kiops:>7.0f}K {met:>6}")
    print(f"\ntotal: {result.total_kiops():.0f} KIOPS; "
          f"corrupted payloads: {len(bad_payloads)}")
    print("guarantees hold regardless of each tenant's key-access skew —")
    print("a one-sided 4 KB READ costs the same wherever it lands.")


if __name__ == "__main__":
    main()
