"""Extension: the verb-diverse NIC + congestion-controlled fabric.

Three demonstrations on the opt-in fabric model (docs/FABRIC.md):

- **doorbell amortization** — ``post_chain``'s calibrated posting-cost
  advantage over single posts, measured on live QPs against the
  model's closed-form ``burst_advantage``;
- **8:1 incast, DCQCN on/off** — ECN marks become CNPs become
  multiplicative decrease: rate control trades a slightly longer
  makespan for a visibly calmer port (fewer marks and PFC pauses per
  second), while with CC off PFC pause is the only backstop;
- **tokens vs. fabric** — the same Haechi QoS cluster at two
  reservation levels: low reservations are token/demand-bound (every
  reservation met with headroom, total far under the port), high
  reservations push entitlement to the port knee and the *fabric*
  becomes the operative limiter under the token envelope.
"""

import pytest

from repro.cluster.fabric_scenarios import (
    THROTTLE_HIGH_OPS,
    THROTTLE_LOW_OPS,
    run_incast,
    run_throttle_vs_cc,
)
from repro.rdma.cc import FabricModel

SEED = 11
INCAST_OPS = 4000


def _measured_posting_spans(n):
    """Actual posting-timeline spans of n chained vs n single posts."""
    from repro.common.types import OpType
    from repro.kvstore import DataNode, KVClient
    from repro.rdma import Fabric, Host, NICProfile
    from repro.rdma.cpu import CPUProfile
    from repro.rdma.dispatch import TypeDispatcher
    from repro.rdma.verbs import WorkRequest
    from repro.sim import Simulator

    spans = []
    for chained in (True, False):
        sim = Simulator()
        fabric = Fabric(sim, model=FabricModel.chameleon(), seed=SEED)
        profile = NICProfile.chameleon()
        server = fabric.add_host(Host(sim, "server", profile, CPUProfile()))
        node = DataNode(server, num_slots=64)
        host = fabric.add_host(Host(sim, "c0", profile, CPUProfile()))
        qp, _ = fabric.connect(host, server)
        host.set_rpc_handler(TypeDispatcher())
        kv = KVClient("c0", qp, TypeDispatcher(),
                      layout=node.store.layout,
                      data_rkey=node.store.region.rkey)
        wrs = [WorkRequest(opcode=OpType.READ, size=4096,
                           remote_addr=kv.layout.slot_addr(0),
                           rkey=kv.data_rkey, touch_memory=False)
               for _ in range(n)]
        if chained:
            qp.post_chain(wrs)
        else:
            for wr in wrs:
                qp.post_send(wr)
        spans.append(qp.fab.post_ready_at)
    return spans  # (chained_span, single_span)


def test_ext_fabric(report):
    model = FabricModel.chameleon()

    # --- doorbell amortization -----------------------------------------
    report.line("Doorbell amortization: host posting cost, chained vs "
                "single (desc 0.15 us, doorbell 0.85 us, batch 16)")
    rows = []
    for n in (1, 4, 16, 64):
        chained_span, single_span = _measured_posting_spans(n)
        advantage = single_span / chained_span
        # The satellite pin: live QPs reproduce the closed-form costs.
        assert chained_span == pytest.approx(model.chained_post_cost(n))
        assert single_span == pytest.approx(n * model.single_post_cost())
        assert advantage == pytest.approx(model.burst_advantage(n))
        rows.append([n, round(single_span * 1e6, 2),
                     round(chained_span * 1e6, 2), round(advantage, 2)])
    report.table(["chain n", "single us", "chained us", "advantage"], rows)

    # --- 8:1 incast, DCQCN on/off --------------------------------------
    report.line()
    report.line(f"8:1 incast, 4 KB READs, {INCAST_OPS} ops/client "
                f"(seed {SEED}); line rate 6250 MB/s, fair share 781")
    on = run_incast(SEED, cc_enabled=True, ops_per_client=INCAST_OPS)
    off = run_incast(SEED, cc_enabled=False, ops_per_client=INCAST_OPS)
    rows = []
    for label, r in (("DCQCN on", on), ("DCQCN off", off)):
        assert r["all_finished"]
        port = r["cc"]["ports"]["server"]
        mk = r["makespan"]
        rows.append([
            label, round(mk * 1e3, 2),
            round(port["ecn_marks"] / mk / 1e3), r["cc"]["qps"]["cnps_sent"],
            round(port["pfc_pause_events"] / mk / 1e3, 1),
        ])
    report.table(
        ["mode", "makespan ms", "marks K/s", "CNPs", "pauses K/s"], rows,
    )
    rates = sorted(round(q["rate_bps"] / 1e6) for q in on["qps"])
    report.line(f"  final DCQCN rates (MB/s): {rates}")

    # Rate control engaged only when enabled ...
    assert on["cc"]["qps"]["cnps_sent"] > 0
    assert off["cc"]["qps"]["cnps_sent"] == 0
    # ... and buys a calmer port (fewer marks and pauses per second)
    # at a small makespan cost: the DCQCN utilization trade-off.
    on_port, off_port = on["cc"]["ports"]["server"], off["cc"]["ports"]["server"]
    assert (on_port["ecn_marks"] / on["makespan"]
            < off_port["ecn_marks"] / off["makespan"])
    assert (on_port["pfc_pause_events"] / on["makespan"]
            < off_port["pfc_pause_events"] / off["makespan"])
    # Every sender converged well below line rate, near the fair share.
    line_mbps = model.link_bytes_per_sec / 1e6
    assert all(200 < r < line_mbps / 4 for r in rates)

    # --- Haechi tokens vs. fabric congestion ---------------------------
    report.line()
    report.line("Haechi QoS on the modeled fabric: who throttles, "
                "tokens or the port?  (8 clients, demand = 2x reservation)")
    rows = []
    results = {}
    for label, res in (("token-bound", THROTTLE_LOW_OPS),
                       ("fabric-bound", THROTTLE_HIGH_OPS)):
        r = run_throttle_vs_cc(SEED, res, measure=6)
        results[label] = r
        att = list(r["attainment"].values())
        rows.append([
            label, res // 1000, round(r["total_kiops"]),
            round(min(att), 3), round(max(att), 3),
            r["cc"]["qps"]["cnps_sent"],
            r["cc"]["ports"]["server"]["pfc_pause_events"],
        ])
    report.table(
        ["regime", "res K/client", "total KIOPS", "att min", "att max",
         "CNPs", "PFC pauses"], rows,
    )

    low, high = results["token-bound"], results["fabric-bound"]
    # Token-bound: every reservation met with work-conserving headroom;
    # the total sits far below what the port could carry.
    assert min(low["attainment"].values()) >= 1.0
    assert low["total_kiops"] < 600
    # Fabric-bound: entitlement (8 x 190 K = 1.52 M ops/s) reaches the
    # ~1.5 M ops/s port knee; the fabric caps the total there and some
    # clients fall measurably short of full attainment.
    assert 1_400 < high["total_kiops"] < 1_600
    assert min(high["attainment"].values()) < 1.0
    assert high["total_kiops"] > 2.5 * low["total_kiops"]
