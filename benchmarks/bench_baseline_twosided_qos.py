"""Baseline comparison: server-centric QoS (two-sided) vs Haechi
(one-sided).

Quantifies the paper's motivation (Secs. I/IV): a traditional scheduler
at the data node can enforce the same reservations — but only on the
two-sided path, whose server saturates at 427 KIOPS.  Haechi enforces
the (proportionally scaled) contract on the one-sided path at 1570
KIOPS: differentiated QoS without giving up the 3.7x throughput of
silent I/O.
"""

import pytest

from repro.baselines import ServerQoSScheduler
from repro.common.types import AccessMode, QoSMode
from repro.cluster.builder import build_cluster
from repro.cluster.experiment import attach_app, run_experiment
from repro.cluster.scenarios import paper_demands, qos_cluster, reservation_set
from repro.workloads.patterns import RequestPattern

from conftest import SWEEP_SCALE

ONE_SIDED_CAPACITY = 1_570_000
TWO_SIDED_CAPACITY = 427_000
PERIODS = 6


def run_server_side():
    """Zipf reservations over 90% of the *two-sided* capacity."""
    reservations = reservation_set("zipf", 0.9 * TWO_SIDED_CAPACITY)
    cluster = build_cluster(
        10, QoSMode.BARE, scale=SWEEP_SCALE, access=AccessMode.TWO_SIDED
    )
    scheduler = ServerQoSScheduler(cluster.data_node, cluster.config.period)
    for i, reservation in enumerate(reservations):
        scheduler.add_client(
            f"C{i+1}", cluster.config.tokens_per_period(reservation)
        )
    for client in cluster.clients:
        attach_app(cluster, client, RequestPattern.BURST,
                   demand_ops=500_000, access=AccessMode.TWO_SIDED)
    scheduler.start()
    result = run_experiment(cluster, warmup_periods=2, measure_periods=PERIODS)
    return reservations, result


def run_haechi():
    """The same Zipf contract, proportionally scaled to one-sided capacity."""
    reservations = reservation_set("zipf", 0.9 * ONE_SIDED_CAPACITY)
    cluster = qos_cluster(
        reservations=reservations,
        demands=paper_demands(reservations, 0.1 * ONE_SIDED_CAPACITY),
        scale=SWEEP_SCALE,
    )
    result = run_experiment(cluster, warmup_periods=2, measure_periods=PERIODS)
    return reservations, result


def test_baseline_server_qos_vs_haechi(benchmark, report):
    def run():
        return run_server_side(), run_haechi()

    (two_res, two), (one_res, one) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    report.line("Server-centric QoS (two-sided) vs Haechi (one-sided), KIOPS")
    report.table(
        ["client", "2s reservation", "2s served", "1s reservation",
         "1s served"],
        [
            [f"C{i+1}", f"{two_res[i]/1000:.0f}",
             f"{two.client_kiops(f'C{i+1}'):.0f}",
             f"{one_res[i]/1000:.0f}",
             f"{one.client_kiops(f'C{i+1}'):.0f}"]
            for i in range(10)
        ],
    )
    speedup = one.total_kiops() / two.total_kiops()
    report.line(f"totals: server-side {two.total_kiops():.0f}, "
                f"Haechi {one.total_kiops():.0f}  ({speedup:.1f}x)")

    # both mechanisms enforce their contracts...
    for i in range(10):
        name = f"C{i+1}"
        assert two.client_kiops(name) * 1000 >= two_res[i] * 0.97
        assert one.client_kiops(name) * 1000 >= one_res[i] * 0.99
    # ...but Haechi does it at the one-sided rate
    assert two.total_kiops() == pytest.approx(427, rel=0.04)
    assert one.total_kiops() == pytest.approx(1570, rel=0.03)
    assert speedup > 3.4
