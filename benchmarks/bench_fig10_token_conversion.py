"""Fig. 10: per-client completions when C1, C2 lack demand
(Experiment 2B) — Haechi's token conversion vs Basic Haechi.

C1 and C2 stop issuing at half their reservation each period.  Basic
Haechi (no conversion) wastes the unused tokens; full Haechi converts
them into global tokens, letting C3-C10 exceed their reservations.
"""

import pytest

from repro.common.types import QoSMode
from repro.cluster.experiment import run_experiment
from repro.cluster.scenarios import paper_demands, qos_cluster, reservation_set

from conftest import SHAPE_SCALE, TOTAL_CAPACITY

RESERVED = 0.9 * TOTAL_CAPACITY
POOL = TOTAL_CAPACITY - RESERVED
UNDERDEMAND_FRACTION = 0.5
PERIODS = 10


def build_demands(reservations):
    demands = paper_demands(reservations, POOL)
    demands[0] = reservations[0] * UNDERDEMAND_FRACTION
    demands[1] = reservations[1] * UNDERDEMAND_FRACTION
    return demands


def run_mode(distribution, qos_mode):
    reservations = reservation_set(distribution, RESERVED)
    cluster = qos_cluster(
        reservations=reservations,
        demands=build_demands(reservations),
        qos_mode=qos_mode,
        scale=SHAPE_SCALE,
    )
    result = run_experiment(cluster, warmup_periods=3, measure_periods=PERIODS)
    return reservations, result


@pytest.mark.parametrize("distribution", ["uniform", "zipf"])
def test_fig10_conversion_vs_basic(benchmark, report, distribution):
    def run():
        reservations, full = run_mode(distribution, QoSMode.HAECHI)
        _, basic = run_mode(distribution, QoSMode.BASIC_HAECHI)
        return reservations, full, basic

    reservations, full, basic = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line(f"Fig. 10 ({distribution} reservations), KIOPS; C1, C2 demand "
                f"only {UNDERDEMAND_FRACTION:.0%} of their reservation")
    report.table(
        ["client", "reservation", "Haechi", "Basic Haechi"],
        [
            [f"C{i+1}", f"{reservations[i]/1000:.0f}",
             f"{full.client_kiops(f'C{i+1}'):.0f}",
             f"{basic.client_kiops(f'C{i+1}'):.0f}"]
            for i in range(10)
        ],
    )
    report.line(f"totals: Haechi {full.total_kiops():.0f}, "
                f"Basic {basic.total_kiops():.0f}")

    for i in (0, 1):
        name = f"C{i+1}"
        # the under-demanders complete their (reduced) demand in both modes
        demanded = reservations[i] * UNDERDEMAND_FRACTION / 1000
        assert full.client_kiops(name) == pytest.approx(demanded, rel=0.06)
        assert basic.client_kiops(name) == pytest.approx(demanded, rel=0.06)
    for i in range(2, 10):
        name = f"C{i+1}"
        # conversion pushes C3-C10 beyond their reservation and beyond Basic
        assert full.client_kiops(name) * 1000 > reservations[i]
        assert full.client_kiops(name) > basic.client_kiops(name) * 1.05
