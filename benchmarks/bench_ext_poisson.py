"""Extension: QoS guarantees under Poisson (memoryless) arrivals.

The paper evaluates burst and constant-rate patterns; production
workloads arrive stochastically.  This bench drives the Experiment-2A
Zipf contract with open-loop Poisson arrivals per client and checks
that reservations hold despite the instantaneous-rate fluctuations
(variance stresses the token gate and the conversion loop).
"""

import pytest

from repro.analysis import jain_fairness
from repro.cluster.experiment import run_experiment
from repro.cluster.scenarios import paper_demands, qos_cluster, reservation_set
from repro.workloads.patterns import RequestPattern

from conftest import SWEEP_SCALE, TOTAL_CAPACITY

RESERVED = 0.85 * TOTAL_CAPACITY
POOL = TOTAL_CAPACITY - RESERVED
PERIODS = 8


def run():
    reservations = reservation_set("zipf", RESERVED)
    cluster = qos_cluster(
        reservations=reservations,
        demands=paper_demands(reservations, POOL),
        pattern=RequestPattern.POISSON,
        scale=SWEEP_SCALE,
    )
    result = run_experiment(cluster, warmup_periods=2, measure_periods=PERIODS)
    return reservations, result


def test_ext_poisson_arrivals(benchmark, report):
    reservations, result = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line("Zipf contract under Poisson arrivals (KIOPS)")
    report.table(
        ["client", "reservation", "served", "per-period spread"],
        [
            [f"C{i+1}", f"{reservations[i]/1000:.0f}",
             f"{result.client_kiops(f'C{i+1}'):.0f}",
             f"{min(result.client_kiops_series(f'C{i+1}')):.0f}-"
             f"{max(result.client_kiops_series(f'C{i+1}')):.0f}"]
            for i in range(10)
        ],
    )
    fairness = jain_fairness(
        [result.client_kiops(f"C{i+1}") for i in range(10)]
    )
    report.line(f"total {result.total_kiops():.0f} KIOPS, "
                f"Jain fairness {fairness:.3f} (Zipf contract: expected < 1)")

    for i, reservation in enumerate(reservations):
        # open-loop Poisson demand only *averages* the configured rate,
        # so allow the same slack the arrival process itself has
        served = result.client_kiops(f"C{i+1}") * 1000
        assert served >= reservation * 0.95
    # the contract is skewed, so fairness must be visibly below 1
    assert fairness < 0.98
