"""Ablation: protocol tick granularity (management/report/check
intervals; the paper fixes all three at 1 ms = T/1000).

Coarser ticks mean slower token conversion (unused reservations sit
idle longer) and staler reports; finer ticks cost more control ops.
The sweep runs the Experiment-2B shape (insufficient demand at C1, C2,
so conversion is on the critical path) across tick counts per period.
"""

import pytest

from repro.cluster.experiment import run_experiment
from repro.cluster.scale import SimScale
from repro.cluster.scenarios import paper_demands, qos_cluster, reservation_set

from conftest import TOTAL_CAPACITY

RESERVED = 0.9 * TOTAL_CAPACITY
POOL = TOTAL_CAPACITY - RESERVED
DIVISORS = (20, 50, 200, 500)
PERIODS = 6


def run_divisor(divisor):
    scale = SimScale(factor=500, interval_divisor=divisor)
    reservations = reservation_set("zipf", RESERVED)
    demands = paper_demands(reservations, POOL)
    demands[0] = reservations[0] * 0.5  # force conversion to matter
    demands[1] = reservations[1] * 0.5
    cluster = qos_cluster(
        reservations=reservations, demands=demands, scale=scale
    )
    result = run_experiment(cluster, warmup_periods=2, measure_periods=PERIODS)
    reports = sum(c.engine.reports_written for c in cluster.clients)
    return {
        "total": result.total_kiops(),
        "conversions": cluster.monitor.conversions / (2 + PERIODS),
        "reports_per_period": reports / (2 + PERIODS),
    }


def test_ablation_tick_granularity(benchmark, report):
    def run():
        return {d: run_divisor(d) for d in DIVISORS}

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line("Tick-granularity ablation (Exp-2B shape: C1, C2 under-demand)")
    report.table(
        ["ticks/period", "KIOPS", "conversions/period", "reports/period"],
        [
            [d, f"{r['total']:.0f}", f"{r['conversions']:.0f}",
             f"{r['reports_per_period']:.0f}"]
            for d, r in rows.items()
        ],
    )

    # finer ticks -> more control traffic
    assert (rows[500]["reports_per_period"] > rows[200]["reports_per_period"]
            > rows[50]["reports_per_period"])
    # work conservation holds from moderate granularity up: converted
    # tokens keep the system near saturation
    for d in (50, 200, 500):
        assert rows[d]["total"] > 1450
    # even very coarse ticks keep the protocol functional (just less
    # efficient at reclaiming)
    assert rows[20]["total"] > 1300
