"""Fig. 11: total throughput of Basic Haechi / Haechi / bare when C1,
C2 have insufficient demand (Experiment 2B).

The paper's ordering: Haechi ~= bare >> Basic Haechi — conversion makes
the QoS mechanism work-conserving.
"""

import pytest

from repro.common.types import QoSMode
from repro.cluster.experiment import run_experiment
from repro.cluster.scenarios import (
    bare_cluster,
    paper_demands,
    qos_cluster,
    reservation_set,
)

from conftest import SHAPE_SCALE, TOTAL_CAPACITY

RESERVED = 0.9 * TOTAL_CAPACITY
POOL = TOTAL_CAPACITY - RESERVED
PERIODS = 10


def build_demands(reservations):
    demands = paper_demands(reservations, POOL)
    demands[0] = reservations[0] * 0.5
    demands[1] = reservations[1] * 0.5
    return demands


def test_fig11_total_throughput_ordering(benchmark, report):
    def run():
        totals = {}
        for distribution in ("uniform", "zipf"):
            reservations = reservation_set(distribution, RESERVED)
            demands = build_demands(reservations)
            row = {}
            for mode in (QoSMode.HAECHI, QoSMode.BASIC_HAECHI):
                cluster = qos_cluster(
                    reservations=reservations, demands=demands,
                    qos_mode=mode, scale=SHAPE_SCALE,
                )
                row[mode.value] = run_experiment(
                    cluster, warmup_periods=3, measure_periods=PERIODS
                ).total_kiops()
            bare = bare_cluster(demands=demands, scale=SHAPE_SCALE)
            row["bare"] = run_experiment(
                bare, warmup_periods=3, measure_periods=PERIODS
            ).total_kiops()
            totals[distribution] = row
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line("Fig. 11: total throughput with C1, C2 under-demanding (KIOPS)")
    report.table(
        ["distribution", "Basic Haechi", "Haechi", "bare"],
        [
            [dist, f"{row['basic_haechi']:.0f}", f"{row['haechi']:.0f}",
             f"{row['bare']:.0f}"]
            for dist, row in totals.items()
        ],
    )

    for dist, row in totals.items():
        # work conservation: Haechi within a few % of bare
        assert row["haechi"] >= row["bare"] * 0.95
        # Basic Haechi wastes the unused reservations
        assert row["haechi"] > row["basic_haechi"] * 1.08
        assert row["bare"] > row["basic_haechi"]
