"""Ablation: token batch size B (paper uses B = 1000).

Small batches multiply remote FAA traffic (more atomics per claimed
token); very large batches hoard pool tokens at one client (unspent
batch remainders are dead capacity until the period ends).  The sweep
reports pool-claim efficiency and FAA counts across B.
"""

import pytest

from repro.cluster.experiment import run_experiment
from repro.cluster.scenarios import paper_demands, qos_cluster, reservation_set

from conftest import SWEEP_SCALE, TOTAL_CAPACITY

RESERVED = 0.9 * TOTAL_CAPACITY
POOL = TOTAL_CAPACITY - RESERVED
# B in *paper* tokens; divided by the time-scale like the default config
BATCHES_PAPER = (100, 1000, 10_000, 50_000)
PERIODS = 6


def run_batch(batch_paper):
    reservations = reservation_set("zipf", RESERVED)
    batch = max(1, round(batch_paper / SWEEP_SCALE.factor))
    cluster = qos_cluster(
        reservations=reservations,
        demands=paper_demands(reservations, POOL),
        scale=SWEEP_SCALE,
        config=SWEEP_SCALE.config(batch_size=batch),
    )
    result = run_experiment(cluster, warmup_periods=2, measure_periods=PERIODS)
    faa_total = sum(c.engine.faa_issued for c in cluster.clients)
    granted = sum(c.engine.faa_granted_tokens for c in cluster.clients)
    stranded = sum(c.engine.tokens.local_global for c in cluster.clients)
    met = all(
        result.client_kiops(f"C{i+1}") * 1000 >= r * 0.99
        for i, r in enumerate(reservations)
    )
    return {
        "batch": batch,
        "total": result.total_kiops(),
        "faa_per_period": faa_total / (2 + PERIODS),
        "granted": granted,
        "stranded": stranded,
        "met": met,
    }


def test_ablation_token_batch_size(benchmark, report):
    def run():
        return [run_batch(b) for b in BATCHES_PAPER]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line("Token batch size B ablation (Zipf, 90% reserved)")
    report.table(
        ["B (paper)", "B (scaled)", "KIOPS", "FAAs/period", "reservations met"],
        [
            [BATCHES_PAPER[i], r["batch"], f"{r['total']:.0f}",
             f"{r['faa_per_period']:.0f}", "yes" if r["met"] else "NO"]
            for i, r in enumerate(rows)
        ],
    )

    # throughput is insensitive to B in this range (the paper's rationale
    # for batching: amortize FAAs without hurting allocation)
    for r in rows:
        assert r["total"] == pytest.approx(1570, rel=0.05)
        assert r["met"]
    # smaller batches require strictly more FAA round trips
    faas = [r["faa_per_period"] for r in rows]
    assert faas[0] > faas[1] > faas[2]
