"""Fig. 14: data-node throughput for burst vs constant-rate requests
under the Set-3 Spike reservations.

The paper measures a 12.9% drop (vs the bare saturated system) for
burst and only 0.7% for constant-rate — the constant-rate pattern keeps
the data node saturated for the whole period.
"""

import pytest

from repro.cluster.experiment import run_experiment
from repro.cluster.scenarios import qos_cluster
from repro.workloads.patterns import BURST_WINDOW, RequestPattern
from repro.workloads.reservations import spike_distribution

from conftest import SHAPE_SCALE

RESERVATIONS = spike_distribution(10, 285_000, 80_000)
DEMANDS = [r / 0.9 for r in RESERVATIONS]
SATURATED = 1570.0
PERIODS = 10


def run_pattern(pattern):
    window = BURST_WINDOW if pattern is RequestPattern.BURST else None
    cluster = qos_cluster(
        reservations=RESERVATIONS, demands=DEMANDS, pattern=pattern,
        window=window, scale=SHAPE_SCALE,
    )
    result = run_experiment(cluster, warmup_periods=3, measure_periods=PERIODS)
    return result.total_kiops()


def test_fig14_throughput_by_pattern(benchmark, report):
    def run():
        return (run_pattern(RequestPattern.BURST),
                run_pattern(RequestPattern.CONSTANT_RATE))

    burst, rate = benchmark.pedantic(run, rounds=1, iterations=1)
    burst_drop = (SATURATED - burst) / SATURATED
    rate_drop = (SATURATED - rate) / SATURATED

    report.line("Fig. 14: data-node throughput, Spike reservations (KIOPS)")
    report.table(
        ["pattern", "throughput", "drop vs saturated", "paper drop"],
        [
            ["burst", f"{burst:.0f}", f"{burst_drop*100:.1f}%", "12.9%"],
            ["constant-rate", f"{rate:.0f}", f"{rate_drop*100:.1f}%", "0.7%"],
        ],
    )

    # shape: burst loses real throughput, constant-rate nearly none
    assert 0.04 < burst_drop < 0.20
    assert rate_drop < 0.02
    assert rate > burst
