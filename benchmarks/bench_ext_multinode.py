"""Extension (paper future work): Haechi across multiple data nodes.

Two data nodes, ten striped clients: aggregate capacity grows past a
single node's 1570 KIOPS while every client's *aggregate* reservation
(enforced as per-node halves) is still met.
"""

import pytest

from repro.cluster.multinode import build_multinode_cluster
from repro.cluster.scale import SimScale

SCALE = SimScale(factor=500, interval_divisor=100)
RESERVATIONS = [280_000] * 4 + [160_000] * 6  # aggregate, ops/s
DEMANDS = [360_000] * 4 + [220_000] * 6
PERIODS = 6


def run():
    cluster = build_multinode_cluster(
        2, 10, reservations_ops=RESERVATIONS, scale=SCALE
    )
    for i, client in enumerate(cluster.clients):
        cluster.attach_burst_app(client, demand_ops=DEMANDS[i])
    cluster.start()
    period = cluster.config.period
    cluster.sim.run(until=2 * period)
    cluster.metrics.reset_window()
    cluster.sim.run(until=cluster.sim.now + PERIODS * period)
    shares = {
        name: sum(m.period_counts) / len(m.period_counts) / period / 1000.0
        for name, m in cluster.metrics.clients.items()
    }
    return shares


def test_ext_multinode_scaling(benchmark, report):
    shares = benchmark.pedantic(run, rounds=1, iterations=1)

    total = sum(shares.values())
    report.line("Haechi across 2 data nodes, 10 striped clients (KIOPS)")
    report.table(
        ["client", "aggregate reservation", "served"],
        [
            [f"C{i+1}", f"{RESERVATIONS[i]/1000:.0f}",
             f"{shares[f'C{i+1}']:.0f}"]
            for i in range(10)
        ],
    )
    report.line(f"aggregate: {total:.0f} KIOPS "
                "(single-node saturation: 1570)")

    for i, reservation in enumerate(RESERVATIONS):
        assert shares[f"C{i+1}"] * 1000 >= reservation * 0.98
    # the deployment scales beyond one data node's capacity
    assert total > 1700
