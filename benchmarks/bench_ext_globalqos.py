"""Extension: global coordinator vs. static split under node skew.

The entitled-vs-commodity scenario (docs/GLOBALQOS.md): two nodes at
~94% admission subscription, two entitled clients with 90% of their
demand on opposite hot nodes, six commodity clients stripping the pool
everywhere.  With the static even split the entitled clients' worst
attainment collapses below 0.8; attaching the coordinator — same seed,
same workload — recovers it above 0.9 while conserving every client's
aggregate reservation exactly (token-ledger audited).
"""

from repro.globalqos.scenario import (
    COMMODITY_RESERVATION_OPS,
    ENTITLED_RESERVATION_OPS,
    NUM_COMMODITY,
    NUM_ENTITLED,
    run_skewed_comparison,
)

SEED = 11


def run():
    comparison = run_skewed_comparison(SEED)
    comparison.pop("_cluster")
    return comparison


def test_ext_globalqos_rebalance(benchmark, report):
    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    static = comparison["static"]
    coordinated = comparison["coordinated"]

    report.line("Global coordinator vs. static even split "
                f"(2 nodes, {NUM_ENTITLED} entitled + "
                f"{NUM_COMMODITY} commodity clients, seed {SEED})")
    rows = []
    for i in range(NUM_ENTITLED + NUM_COMMODITY):
        name = f"C{i + 1}"
        entitled = i < NUM_ENTITLED
        reservation = (ENTITLED_RESERVATION_OPS if entitled
                       else COMMODITY_RESERVATION_OPS)
        rows.append([
            name,
            "entitled" if entitled else "commodity",
            f"{reservation / 1000:.0f}",
            f"{static['attainment'][name]:.3f}",
            f"{coordinated['attainment'][name]:.3f}",
        ])
    report.table(
        ["client", "class", "aggregate reservation (KIOPS)",
         "static attainment", "coordinated attainment"],
        rows,
    )
    report.line(
        f"worst entitled: {static['worst_entitled_attainment']:.3f} static "
        f"-> {coordinated['worst_entitled_attainment']:.3f} coordinated "
        f"(gain {comparison['worst_gain']:+.3f})"
    )
    report.line(
        f"coordinator: {coordinated['rebalances']} rebalances, "
        f"{coordinated['tokens_shifted']} tokens shifted, "
        f"{coordinated['fallbacks']} fallbacks"
    )
    report.line("conservation: "
                + ("clean" if not (coordinated["ledger_violations"]
                                   or coordinated["split_violations"])
                   else "VIOLATED"))

    # The issue's acceptance bar: static < 0.8, coordinated >= 0.9.
    assert static["worst_entitled_attainment"] < 0.8
    assert coordinated["worst_entitled_attainment"] >= 0.9
    # Rebalancing must not rob the commodity clients of their floor.
    assert coordinated["worst_attainment"] >= 0.9
    # Every shift conserved aggregates exactly, per the ledger audit.
    assert coordinated["ledger_violations"] == []
    assert coordinated["split_violations"] == []
    assert coordinated["rebalances"] >= 1
