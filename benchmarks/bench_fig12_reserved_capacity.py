"""Fig. 12: system throughput vs reserved-capacity percentage
(Experiment 2C).

Uniform reservations keep the system at C_G for every reserved
fraction; Zipf throughput approaches Uniform at low fractions (global
tokens dominate, fair competition splits them equally) and falls as the
reserved share grows (low-reservation clients idle once the small pool
drains, leaving fewer than the 4 active clients needed to saturate).
"""

import pytest

from repro.cluster.experiment import run_experiment
from repro.cluster.runner import fig12_cells
from repro.cluster.scenarios import qos_cluster, reservation_set

from conftest import SWEEP_SCALE, TOTAL_CAPACITY, run_sweep_cells

FRACTIONS = (0.5, 0.6, 0.7, 0.8, 0.9)
PERIODS = 6


def run_point(distribution, fraction):
    reservations = reservation_set(distribution, fraction * TOTAL_CAPACITY)
    pool = (1 - fraction) * TOTAL_CAPACITY
    # Experiment 2A demand rule, scaled to the varying pool: each client
    # wants its reservation plus the whole initial pool.
    demands = [r + pool for r in reservations]
    cluster = qos_cluster(
        reservations=reservations, demands=demands, scale=SWEEP_SCALE
    )
    result = run_experiment(cluster, warmup_periods=2, measure_periods=PERIODS)
    for i, r in enumerate(reservations):
        assert result.client_kiops(f"C{i+1}") * 1000 >= r * 0.98, (
            f"{distribution}@{fraction}: C{i+1} missed its reservation"
        )
    return result.total_kiops()


def test_fig12_reserved_fraction_sweep(benchmark, report):
    # The sweep goes through the parallel cell runner (serial by
    # default; REPRO_BENCH_WORKERS fans it out with identical results).
    def run():
        cells = fig12_cells(fractions=FRACTIONS, periods=PERIODS)
        outcome = run_sweep_cells(cells)
        totals = {"uniform": [], "zipf": []}
        for cell, result in zip(outcome.cells, outcome.results):
            for i, r in enumerate(result["reservations"]):
                assert result["client_kiops"][f"C{i+1}"] * 1000 >= r * 0.98, (
                    f"{cell.params['distribution']}@{cell.params['fraction']}"
                    f": C{i+1} missed its reservation"
                )
            totals[cell.params["distribution"]].append(result["total_kiops"])
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line("Fig. 12: throughput vs reserved capacity (KIOPS)")
    report.table(
        ["reserved %", "uniform", "zipf"],
        [
            [f"{int(f*100)}%", f"{totals['uniform'][i]:.0f}",
             f"{totals['zipf'][i]:.0f}"]
            for i, f in enumerate(FRACTIONS)
        ],
    )

    # uniform stays at C_G across the sweep
    for value in totals["uniform"]:
        assert value == pytest.approx(1570, rel=0.03)
    # zipf approaches uniform at 50% reserved...
    assert totals["zipf"][0] >= totals["uniform"][0] * 0.97
    # ...and never rises above it as the reserved share grows.  NOTE:
    # the paper shows a *pronounced* Zipf drop at 90% reserved; with
    # this reproduction's obligation-based token conversion the low-
    # reservation clients keep receiving converted tokens and the
    # system stays saturated, so only the direction (zipf <= uniform,
    # mild monotone decline) reproduces — see EXPERIMENTS.md.
    for uniform_value, zipf_value in zip(totals["uniform"], totals["zipf"]):
        assert zipf_value <= uniform_value + 5
    assert totals["zipf"][-1] <= totals["zipf"][0] + 2
