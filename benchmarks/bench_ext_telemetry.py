"""Extension: telemetry cost and the per-stage latency decomposition.

Two questions a QoS observability layer must answer about itself:

- **What does watching cost?**  The overhead table times the saturated
  Fig. 7 point (10 clients, burst, one-sided) with no hub, a disabled
  hub, and span sampling at 1/100, 1/10 and 1/1.  The simulated KIOPS
  must be bit-identical in every column — telemetry observes the run,
  it never perturbs it — so the only cost is host CPU, reported as the
  median paired-round overhead against the no-hub baseline.
- **Where does the time go?**  The decomposition table breaks the same
  saturated point's end-to-end latency into causal stages (engine
  queue, NIC issue pipeline, fabric, target pipeline, return) whose
  means sum exactly to the end-to-end mean — the property the span
  model guarantees by construction.
"""

import pytest

from repro.telemetry import format_stage_table, stage_breakdown
from repro.telemetry.overhead import DEFAULT_RATES, measure_overhead, \
    run_saturated

PERIODS = 8
REPEATS = 3


def test_ext_telemetry(benchmark, report):
    def run():
        rows = measure_overhead(rates=DEFAULT_RATES, periods=PERIODS,
                                repeats=REPEATS)
        sampled = run_saturated(periods=PERIODS, sample_every=10)
        return rows, sampled

    rows, sampled = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line("Telemetry overhead at the saturated Fig. 7 point "
                "(10 clients, burst, one-sided)")
    report.table(
        ["sampling", "KIOPS", "cpu (s)", "overhead", "spans"],
        [[row["sample"], f"{row['kiops']:.0f}",
          f"{row['cpu_seconds']:.3f}", f"{row['overhead'] * 100:+.1f}%",
          str(row["spans_recorded"])] for row in rows],
    )
    report.line("(KIOPS identical in every row: telemetry never perturbs "
                "the simulated run)")

    # measure_overhead already asserts KIOPS equality; restate the
    # issue's throughput criteria explicitly against the baseline.
    baseline = rows[0]["kiops"]
    by_label = {row["sample"]: row for row in rows}
    assert abs(by_label["disabled"]["kiops"] - baseline) <= 0.03 * baseline
    assert abs(by_label["1/100"]["kiops"] - baseline) <= 0.10 * baseline
    # Sampling depth scales the span count, roughly linearly.
    assert by_label["1/1"]["spans_recorded"] > \
        5 * by_label["1/10"]["spans_recorded"] > \
        5 * by_label["1/100"]["spans_recorded"] > 0

    report.line()
    report.line("Per-stage latency decomposition at the same point "
                "(sampling 1/10)")
    hub = sampled["hub"]
    for line in format_stage_table(hub.spans):
        report.line(line)
    entry = stage_breakdown(hub.spans)["onesided_read"]
    stage_mean_sum = sum(mean for _, mean, _, _ in entry["stages"])
    assert stage_mean_sum == pytest.approx(entry["total_mean"], rel=1e-9)
    # At C_G saturation the target NIC's pipeline is the bottleneck: 10
    # clients contend for one server NIC, so queueing in its target
    # pipeline dwarfs every wire segment.
    stages = dict((name, mean) for name, mean, _, _ in entry["stages"])
    assert stages["nic_target"] == max(stages.values())
    assert stages["nic_target"] > 0.9 * entry["total_mean"]
    report.line()
    report.line(f"stage means sum to the end-to-end mean exactly "
                f"({entry['total_mean'] * 1e6:.3f} us over "
                f"{entry['count']} sampled ops)")
