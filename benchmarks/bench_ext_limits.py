"""Extension: limits (L_i) — the other half of the paper's QoS contract.

The paper states Haechi "is easily extended to handle limits"; this
bench exercises that extension.  A cost-capped tenant is swept through
limit values while greedy peers compete: its throughput must track the
limit exactly (within one batch), the freed capacity must flow to the
peers, and — as Sec. II-D notes — when *every* client is limited below
system capacity, the data node idles rather than serve past the
contracts.
"""

import pytest

from repro.common.types import QoSMode
from repro.cluster.builder import build_cluster
from repro.cluster.experiment import attach_app, run_experiment
from repro.workloads.patterns import RequestPattern

from conftest import SWEEP_SCALE

RESERVATION = 100_000
LIMIT_SWEEP = (150_000, 250_000, 350_000)
PERIODS = 6


def run_limited(limit_ops):
    cluster = build_cluster(
        3,
        QoSMode.HAECHI,
        reservations_ops=[RESERVATION] * 3,
        limits_ops=[limit_ops, None, None],
        scale=SWEEP_SCALE,
    )
    for client in cluster.clients:
        attach_app(cluster, client, RequestPattern.BURST,
                   demand_ops=390_000, window=None)
    return run_experiment(cluster, warmup_periods=2, measure_periods=PERIODS)


def run_all_limited():
    """Everyone limited to 100 K: the system must idle at ~300 K."""
    cluster = build_cluster(
        3,
        QoSMode.HAECHI,
        reservations_ops=[RESERVATION] * 3,
        limits_ops=[100_000] * 3,
        scale=SWEEP_SCALE,
    )
    for client in cluster.clients:
        attach_app(cluster, client, RequestPattern.BURST,
                   demand_ops=390_000, window=None)
    return run_experiment(cluster, warmup_periods=2, measure_periods=PERIODS)


def test_ext_limit_enforcement(benchmark, report):
    def run():
        sweep = {limit: run_limited(limit) for limit in LIMIT_SWEEP}
        return sweep, run_all_limited()

    sweep, all_limited = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line("Limit sweep: C1 reserved 100 K, limited; C2/C3 greedy (KIOPS)")
    report.table(
        ["C1 limit", "C1 served", "C2 served", "C3 served", "total"],
        [
            [f"{limit/1000:.0f}", f"{r.client_kiops('C1'):.0f}",
             f"{r.client_kiops('C2'):.0f}", f"{r.client_kiops('C3'):.0f}",
             f"{r.total_kiops():.0f}"]
            for limit, r in sweep.items()
        ],
    )
    report.line()
    report.line("all three limited to 100 K: total "
                f"{all_limited.total_kiops():.0f} KIOPS "
                "(system deliberately idles)")

    for limit, result in sweep.items():
        # the cap binds exactly (within rounding of the dilated tokens)
        assert result.client_kiops("C1") * 1000 == pytest.approx(
            limit, rel=0.02
        )
        # the reservation under the limit is still guaranteed
        assert result.client_kiops("C1") * 1000 >= RESERVATION * 0.99
        # freed capacity flows to the unlimited tenants
        assert result.client_kiops("C2") * 1000 > RESERVATION
    # a looser cap means more throughput for C1 and for the system
    # (C2/C3 are demand-bound at 390 K in every configuration here)
    assert (sweep[350_000].client_kiops("C1")
            > sweep[150_000].client_kiops("C1"))
    assert (sweep[350_000].total_kiops()
            > sweep[150_000].total_kiops())
    # with everyone limited, the system idles at the contract ceiling
    assert all_limited.total_kiops() * 1000 == pytest.approx(300_000, rel=0.02)
