"""Extension: partition-tolerant control plane under failover chaos.

The HA build of the skewed scenario (docs/GLOBALQOS.md §4): leader +
warm-standby coordinators with fail-slow quarantine armed.  Each seeded
run cuts the leader->standby link asymmetrically (the deposed leader
keeps transmitting but hears nothing), lags its dying split updates so
they lose the race to the new leader's, then turns one data node gray
for two epochs after the heal.  The bench reports the failover story
per seed — takeover epoch, fenced/stale update counts, the quarantine
cycle — and asserts the chaos harness's full invariant verdict:
bounded takeover, zero stale applications, quarantine entered and
released with a clean ledger audit, no lost acked PUT, conservation,
reservations met.
"""

from repro.globalqos.chaos import DEFAULT_SEEDS, run_partition_chaos

PERIODS = 36


def run():
    return [run_partition_chaos(seed, periods=PERIODS)
            for seed in DEFAULT_SEEDS]


def test_ext_failover_partition_chaos(benchmark, report):
    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line("Partition + failover chaos on the HA coordinator build "
                f"({PERIODS} periods, seeds {list(DEFAULT_SEEDS)})")
    rows = []
    for rep in reports:
        rows.append([
            str(rep.seed),
            "PASS" if rep.ok else "FAIL",
            str(rep.takeover_epoch),
            str(rep.stepdowns),
            str(rep.fenced_updates),
            str(rep.stale_rejected),
            f"{rep.quarantines}/{rep.unquarantines}",
            str(rep.tokens_shifted),
            str(rep.puts_acked),
        ])
    report.table(
        ["seed", "verdict", "takeover epoch", "stepdowns", "fenced",
         "stale applied", "quar/unquar", "tokens shifted", "puts acked"],
        rows,
    )
    ok = sum(1 for rep in reports if rep.ok)
    report.line(f"{ok}/{len(reports)} seeds passed every failover "
                "invariant (bounded takeover, epoch fencing, quarantine "
                "cycle, conservation, durability)")

    for rep in reports:
        assert rep.ok, f"seed {rep.seed}: {rep.violations}"
        # Exactly one takeover, no flap-back by the deposed leader.
        assert rep.takeovers == 1
        assert rep.stepdowns >= 1
        # The fencing path was actually exercised: the deposed leader's
        # laggy updates bounced off every client.
        assert rep.fenced_updates >= 1
        assert rep.stale_rejected == 0
        # The gray node went through the full quarantine cycle.
        assert rep.quarantines >= 1
        assert rep.unquarantines == rep.quarantines
        # Durability: the drivers kept writing through all of it.
        assert rep.puts_acked > 0
