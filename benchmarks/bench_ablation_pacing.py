"""Ablation: client pacing — completion-gated vs token-paced burst.

The central reproduction finding (EXPERIMENTS.md): on an equal-share
FIFO data node, a strictly completion-gated 64-deep burst client can
never exceed the equal share while everyone is backlogged, so
high-reservation clients *cannot* meet reservations above ~C_G/N; a
token-paced engine (posting eagerly while holding tokens) can.  This
bench runs Experiment 2A's Zipf contract both ways and shows the
dichotomy the paper's own Set-2 vs Set-3 results straddle.
"""

import pytest

from repro.cluster.experiment import run_experiment
from repro.cluster.scenarios import paper_demands, qos_cluster, reservation_set
from repro.workloads.patterns import BURST_WINDOW

from conftest import SHAPE_SCALE, TOTAL_CAPACITY

RESERVED = 0.9 * TOTAL_CAPACITY
POOL = TOTAL_CAPACITY - RESERVED
PERIODS = 8


def run_pacing(window):
    reservations = reservation_set("zipf", RESERVED)
    cluster = qos_cluster(
        reservations=reservations,
        demands=paper_demands(reservations, POOL),
        window=window,
        scale=SHAPE_SCALE,
    )
    result = run_experiment(cluster, warmup_periods=3, measure_periods=PERIODS)
    return reservations, result


def test_ablation_client_pacing(benchmark, report):
    def run():
        reservations, gated = run_pacing(BURST_WINDOW)
        _, paced = run_pacing(None)
        return reservations, gated, paced

    reservations, gated, paced = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line("Client pacing ablation: Exp-2A Zipf contract, KIOPS")
    report.table(
        ["client", "reservation", "completion-gated (64)", "token-paced"],
        [
            [f"C{i+1}", f"{reservations[i]/1000:.0f}",
             f"{gated.client_kiops(f'C{i+1}'):.0f}",
             f"{paced.client_kiops(f'C{i+1}'):.0f}"]
            for i in range(10)
        ],
    )
    report.line(f"totals: gated {gated.total_kiops():.0f}, "
                f"paced {paced.total_kiops():.0f}")
    report.line("Token-paced clients post reservation-backed I/Os ahead of")
    report.line("completions, so the server queue honours the contract even")
    report.line("against an equal-share NIC; completion-gated clients are")
    report.line("pinned to the share (the fluid-analysis ~197 K ceiling).")

    # token-paced: every reservation met
    for i, reservation in enumerate(reservations):
        assert paced.client_kiops(f"C{i+1}") * 1000 >= reservation * 0.99
    # completion-gated: the two high-reservation clients fall short of
    # their 236 K reservations (bounded near the fluid ~197 K ceiling)
    for name in ("C1", "C2"):
        assert gated.client_kiops(name) * 1000 < reservations[0] * 0.95
        assert gated.client_kiops(name) < 210
    # and both configurations still beat the bare equal share for C1
    assert gated.client_kiops("C1") > 157 * 1.1
