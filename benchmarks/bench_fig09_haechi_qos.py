"""Fig. 9: Haechi vs the bare system with sufficient demand
(Experiment 2A).

90% of the 1570 KIOPS capacity is reserved (Uniform / Zipf across 10
clients); every client's demand is its reservation plus the initial
global pool.  Under Haechi every client must meet its reservation; on
the bare system clients get equal shares regardless of reservation, so
Zipf's high-reservation clients fall short.  The paper also reports a
throughput drop below 0.1% with Haechi enabled.
"""

import pytest

from repro.common.types import QoSMode
from repro.cluster.experiment import run_experiment
from repro.cluster.scenarios import (
    bare_cluster,
    paper_demands,
    qos_cluster,
    reservation_set,
)

from conftest import SHAPE_SCALE, TOTAL_CAPACITY

RESERVED = 0.9 * TOTAL_CAPACITY
POOL = TOTAL_CAPACITY - RESERVED
PERIODS = 10


def run_pair(distribution):
    reservations = reservation_set(distribution, RESERVED)
    demands = paper_demands(reservations, POOL)
    haechi = qos_cluster(
        reservations=reservations, demands=demands, scale=SHAPE_SCALE
    )
    haechi_result = run_experiment(haechi, warmup_periods=3,
                                   measure_periods=PERIODS)
    bare = bare_cluster(demands=demands, scale=SHAPE_SCALE)
    bare_result = run_experiment(bare, warmup_periods=3,
                                 measure_periods=PERIODS)
    return reservations, haechi_result, bare_result, haechi


@pytest.mark.parametrize("distribution", ["uniform", "zipf"])
def test_fig09_haechi_vs_bare(benchmark, report, distribution):
    reservations, haechi, bare, cluster = benchmark.pedantic(
        lambda: run_pair(distribution), rounds=1, iterations=1
    )

    report.line(f"Fig. 9 ({distribution} reservations), KIOPS")
    rows = []
    for i in range(10):
        name = f"C{i+1}"
        rows.append([
            name,
            f"{reservations[i]/1000:.0f}",
            f"{haechi.client_kiops(name):.0f}",
            f"{bare.client_kiops(name):.0f}",
            "yes" if haechi.client_kiops(name) * 1000 >= reservations[i] * 0.99
            else "NO",
        ])
    report.table(
        ["client", "reservation", "Haechi", "bare", "res. met (Haechi)"],
        rows,
    )
    drop = (bare.total_kiops() - haechi.total_kiops()) / bare.total_kiops()
    report.line(f"totals: Haechi {haechi.total_kiops():.0f}, "
                f"bare {bare.total_kiops():.0f}  (drop {drop*100:.2f}%)")
    overhead = cluster.server_host.nic.control_overhead_fraction(
        periods=3 + PERIODS
    )
    report.line(
        "paper-scale control overhead at the data-node NIC: "
        f"{overhead['target']*100:.3f}% (paper: negligible, <0.1% throughput)"
    )

    # every reservation met under Haechi
    for i in range(10):
        assert haechi.client_kiops(f"C{i+1}") * 1000 >= reservations[i] * 0.99
    # negligible throughput loss (paper: <0.1%; allow 1% at this dilation)
    assert drop < 0.01
    if distribution == "zipf":
        # bare gives equal shares: high-reservation clients starve
        assert bare.client_kiops("C1") == pytest.approx(157, rel=0.05)
        assert bare.client_kiops("C1") * 1000 < reservations[0]
        # Haechi redistributes from low- to high-reservation clients
        assert haechi.client_kiops("C1") > bare.client_kiops("C1") + 50
        assert haechi.client_kiops("C10") < bare.client_kiops("C10")
    # the analytic control overhead supports the "negligible" claim
    assert overhead["target"] < 0.005
