"""Fig. 16: system throughput when network congestion *begins* mid-run
(Set 4, capacity overestimation).

Unmanaged background traffic starts at period 15; the Haechi clients'
throughput steps down and the adaptive estimator walks the token budget
down to the new capacity.
"""

import pytest

from conftest import SET4_SWITCH


@pytest.mark.parametrize("distribution", ["uniform", "zipf"])
def test_fig16_congestion_onset_throughput(benchmark, report, set4_runs,
                                           distribution):
    _reservations, result, cluster = benchmark.pedantic(
        lambda: set4_runs(True, distribution), rounds=1, iterations=1
    )

    series = result.total_kiops_series()
    report.line(f"Fig. 16 ({distribution}): per-period system throughput "
                "(KIOPS); congestion starts at period "
                f"{SET4_SWITCH + 1}")
    report.table(
        ["period", "KIOPS"],
        [[i + 1, f"{v:.0f}"] for i, v in enumerate(series)],
    )
    estimates = [
        cluster.scale.kiops(v) for v in cluster.monitor.estimator.history
    ]
    report.line("estimator (KIOPS/period): "
                + " ".join(f"{v:.0f}" for v in estimates))

    before = series[: SET4_SWITCH - 1]
    after = series[-8:]
    mean_before = sum(before) / len(before)
    mean_after = sum(after) / len(after)
    # saturated before the hit, visibly lower after
    assert mean_before == pytest.approx(1570, rel=0.03)
    assert mean_after < mean_before - 120
    # throughput never collapses below the reserved share
    assert min(after) > 1100
    # the estimator converged downwards
    assert estimates[-1] < estimates[0] * 0.95
