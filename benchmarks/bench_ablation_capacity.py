"""Ablation: Algorithm-1 parameters (eta, history window M, and the
Omega_prof - 3*sigma floor).

Runs the estimator against a synthetic capacity trace (drop by 13% at
period 30, recover at period 60) and measures adaptation behaviour:

- eta trades recovery speed against steady-state overshoot;
- the window M trades smoothing against adaptation lag;
- removing the floor lets an idle period crater the estimate — the
  failure mode the paper's lower bound exists to prevent.
"""

import pytest

from repro.core.capacity import AdaptiveCapacityEstimator, ProfiledCapacity


def synthetic_trace(est, idle_periods=()):
    """Drive the estimator closed-loop against a shifting true capacity."""
    history = []
    for period in range(90):
        if period in idle_periods:
            completed = 100  # an almost-idle, low-demand period
        else:
            true_capacity = 10_000 if not 30 <= period < 60 else 8_700
            completed = min(est.current, true_capacity)
        est.update(completed)
        history.append(est.current)
    return history


def recovery_time(history, target, start):
    for i, value in enumerate(history[start:], start):
        if value >= target:
            return i - start
    return len(history) - start


def test_ablation_capacity_estimation(benchmark, report):
    def run():
        out = {}
        for eta in (50, 100, 400):
            est = AdaptiveCapacityEstimator(
                ProfiledCapacity(10_000, 500), eta=eta, history_window=10
            )
            history = synthetic_trace(est)
            out[("eta", eta)] = history
        for window in (2, 10, 30):
            est = AdaptiveCapacityEstimator(
                ProfiledCapacity(10_000, 500), eta=100, history_window=window
            )
            out[("M", window)] = synthetic_trace(est)
        # floor on vs off under idle periods
        est_floor = AdaptiveCapacityEstimator(
            ProfiledCapacity(10_000, 500), eta=100, history_window=10
        )
        out[("floor", "on")] = synthetic_trace(est_floor,
                                               idle_periods=range(10, 15))
        est_nofloor = AdaptiveCapacityEstimator(
            ProfiledCapacity(10_000, 3_333), eta=100, history_window=10
        )  # 3*sigma ~= the whole capacity: effectively no floor
        out[("floor", "off")] = synthetic_trace(est_nofloor,
                                                idle_periods=range(10, 15))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line("Algorithm-1 ablations on a synthetic 13% capacity dip")
    rows = []
    for eta in (50, 100, 400):
        history = out[("eta", eta)]
        rows.append([
            f"eta={eta}",
            f"{min(history[30:60])}",
            recovery_time(history, 9_800, 60),
            f"{max(history) - 10_000:+d}",
        ])
    report.table(
        ["config", "est. during dip", "periods to recover", "peak overshoot"],
        rows,
    )
    report.line()
    rows = []
    for window in (2, 10, 30):
        history = out[("M", window)]
        settle = recovery_time([-h for h in history], -9_000, 30)
        rows.append([f"M={window}", settle, f"{history[59]}"])
    report.table(
        ["config", "periods to adapt down", "estimate at end of dip"], rows
    )
    report.line()
    floor_on = out[("floor", "on")]
    floor_off = out[("floor", "off")]
    report.line(
        f"floor on:  min estimate during idle periods = {min(floor_on[10:20])}"
    )
    report.line(
        f"floor off: min estimate during idle periods = {min(floor_off[10:20])}"
    )

    # larger eta recovers faster
    assert (recovery_time(out[("eta", 400)], 9_800, 60)
            <= recovery_time(out[("eta", 100)], 9_800, 60)
            <= recovery_time(out[("eta", 50)], 9_800, 60))
    # a larger window adapts down more slowly
    fast = out[("M", 2)]
    slow = out[("M", 30)]
    assert fast[35] <= slow[35]
    # the floor protects against idle periods; without it the estimate craters
    assert min(floor_on[10:20]) > 9_000
    assert min(floor_off[10:20]) < 5_000
    # and both tracks still find the dip level eventually
    assert min(out[("eta", 100)][40:60]) == pytest.approx(8_700, rel=0.05)
