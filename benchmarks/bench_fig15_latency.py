"""Fig. 15: average / p99 / p99.9 read latency for burst vs
constant-rate requests (Set 3).

The burst pattern builds deep client queues (high queueing delay);
constant-rate requests see almost no queue, so both the average and the
tails are significantly lower.
"""

import math

import pytest

from repro.cluster.experiment import run_experiment
from repro.cluster.scenarios import qos_cluster
from repro.workloads.patterns import BURST_WINDOW, RequestPattern
from repro.workloads.reservations import spike_distribution

from conftest import SHAPE_SCALE

RESERVATIONS = spike_distribution(10, 285_000, 80_000)
DEMANDS = [r / 0.9 for r in RESERVATIONS]
PERIODS = 10


def run_pattern(pattern):
    window = BURST_WINDOW if pattern is RequestPattern.BURST else None
    cluster = qos_cluster(
        reservations=RESERVATIONS, demands=DEMANDS, pattern=pattern,
        window=window, scale=SHAPE_SCALE,
    )
    result = run_experiment(cluster, warmup_periods=3, measure_periods=PERIODS)
    # aggregate the per-client summaries into fleet-level numbers
    means, p99s, p999s = [], [], []
    for summary in result.client_latency.values():
        if summary["count"]:
            means.append(summary["mean"])
            p99s.append(summary["p99"])
            p999s.append(summary["p999"])
    return {
        "mean": sum(means) / len(means),
        "p99": max(p99s),
        "p999": max(p999s),
    }


def test_fig15_latency_by_pattern(benchmark, report):
    def run():
        return (run_pattern(RequestPattern.BURST),
                run_pattern(RequestPattern.CONSTANT_RATE))

    burst, rate = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line("Fig. 15: read latency, Spike reservations")
    report.table(
        ["metric", "burst", "constant-rate"],
        [
            [name, f"{burst[key]*1e6:.1f} us", f"{rate[key]*1e6:.1f} us"]
            for name, key in (("average", "mean"), ("p99", "p99"),
                              ("p99.9", "p999"))
        ],
    )

    for key in ("mean", "p99", "p999"):
        assert not math.isnan(burst[key]) and not math.isnan(rate[key])
        # constant-rate is significantly lower at every percentile
        assert rate[key] < burst[key] * 0.8
    # tails dominate means in both patterns
    assert burst["p99"] >= burst["mean"]
    assert rate["p99"] >= rate["mean"]
