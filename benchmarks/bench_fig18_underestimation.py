"""Fig. 18: system throughput when network congestion *stops* mid-run
(Set 4, capacity underestimation).

Background traffic occupies the fabric for the first 15 periods; when
it stops, the estimator climbs back by eta-sized increments and system
throughput gradually recovers to the saturated level.
"""

import pytest

from conftest import SET4_SWITCH


@pytest.mark.parametrize("distribution", ["uniform", "zipf"])
def test_fig18_congestion_relief_throughput(benchmark, report, set4_runs,
                                            distribution):
    _reservations, result, cluster = benchmark.pedantic(
        lambda: set4_runs(False, distribution), rounds=1, iterations=1
    )

    series = result.total_kiops_series()
    report.line(f"Fig. 18 ({distribution}): per-period system throughput "
                f"(KIOPS); congestion stops at period {SET4_SWITCH + 1}")
    report.table(
        ["period", "KIOPS"],
        [[i + 1, f"{v:.0f}"] for i, v in enumerate(series)],
    )
    estimates = [
        cluster.scale.kiops(v) for v in cluster.monitor.estimator.history
    ]
    report.line("estimator (KIOPS/period): "
                + " ".join(f"{v:.0f}" for v in estimates))

    before = series[: SET4_SWITCH - 1]
    after = series[-5:]
    mean_before = sum(before) / len(before)
    mean_after = sum(after) / len(after)
    # depressed during congestion, recovered at the end
    assert mean_before < 1480
    assert mean_after > mean_before + 100
    # the estimator ends higher than its congested level
    congested_estimate = min(estimates)
    assert estimates[-1] > congested_estimate + 50
