"""Extension: automated anomaly hunting over the scenario space.

Runs one seeded search campaign end to end — random + mutation-biased
candidates through the cell runner, the full oracle registry on every
run, delta debugging on every find — and demonstrates the headline
properties the subsystem guarantees (see docs/HUNT.md):

- the campaign is **deterministic**: the same (seed, budget) yields a
  byte-identical report regardless of worker count;
- the search **finds** anomalies: the fault-plan genome reaches
  configurations that violate safety and liveness oracles;
- every find **minimizes**: delta debugging confirms a smaller spec
  that still triggers the same violation kind, and replaying the
  minimized (spec, seed) reproduces it bit-identically.
"""

import json

from repro.hunt import (
    HuntConfig,
    replay,
    reproducer_dict,
    run_hunt,
)

from conftest import BENCH_WORKERS

BUDGET = 16
SEED = 7


def test_ext_hunt(benchmark, report):
    config = HuntConfig(budget=BUDGET, seed=SEED, batch=8,
                        minimize=True, workers=BENCH_WORKERS)

    campaign = benchmark.pedantic(lambda: run_hunt(config),
                                  rounds=1, iterations=1)

    report.line(f"Anomaly hunt: budget {BUDGET}, campaign seed {SEED}, "
                "mutation-biased frontier search + ddmin minimization")
    report.line()
    rows = []
    for finding in sorted(campaign.findings, key=lambda f: f.kind):
        spec = finding.minimized_spec or finding.spec
        rows.append([
            finding.kind,
            finding.oracle,
            str(finding.found_at),
            str(finding.sightings),
            str(finding.minimize_steps),
            f"{spec.num_clients}c/{len(spec.faults)}f/{spec.periods}p",
        ])
    report.table(["violation kind", "oracle", "found@", "seen",
                  "dd steps", "minimal spec"], rows)
    counters = campaign.counters
    report.line()
    report.line(f"candidates: {counters['candidates']}  violating: "
                f"{counters['violating_candidates']}  findings: "
                f"{counters['findings']}  minimize probes: "
                f"{counters['minimize_steps']}")

    # The search engages: anomalies exist in the space and are found.
    assert campaign.findings, "a 16-candidate campaign must find anomalies"
    assert counters["violating_candidates"] >= 2

    # Every finding survived minimization and got strictly simpler or
    # equal (delta debugging never grows the spec).
    assert campaign.ok
    for finding in campaign.findings:
        assert finding.minimized_spec is not None
        assert (len(finding.minimized_spec.faults)
                <= len(finding.spec.faults))
        assert (finding.minimized_spec.num_clients
                <= finding.spec.num_clients)

    # Reproducers replay bit-identically and re-trigger their kind.
    for finding in campaign.findings:
        payload = reproducer_dict(finding, campaign_seed=SEED)
        first = replay(payload)
        second = replay(payload)
        assert first.reproduced, finding.kind
        assert (json.dumps(first.result, sort_keys=True)
                == json.dumps(second.result, sort_keys=True))

    # Worker-count independence: the report is the determinism contract.
    serial = run_hunt(HuntConfig(budget=BUDGET, seed=SEED, batch=8,
                                 minimize=True, workers=1))
    assert serial.to_json() == campaign.to_json()
    report.line("report bytes identical at workers=1 vs "
                f"workers={BENCH_WORKERS}: yes")
