"""Fig. 6: per-client saturation throughput, one-sided vs two-sided.

The paper runs each of the 10 clients alone with 64 outstanding burst
requests: every client saturates near 400 KIOPS one-sided and ~327
KIOPS two-sided.
"""

import pytest

from repro.common.types import AccessMode
from repro.cluster.experiment import run_experiment
from repro.cluster.scenarios import SATURATING_OPS, bare_cluster

from conftest import SWEEP_SCALE


def single_client_kiops(access: AccessMode) -> float:
    cluster = bare_cluster(
        demands=[SATURATING_OPS], scale=SWEEP_SCALE, access=access
    )
    result = run_experiment(cluster, warmup_periods=1, measure_periods=5)
    return result.total_kiops()


def test_fig06_per_client_saturation(benchmark, report):
    def run():
        one = single_client_kiops(AccessMode.ONE_SIDED)
        two = single_client_kiops(AccessMode.TWO_SIDED)
        return one, two

    one, two = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line("Per-client saturation throughput (each client run alone)")
    report.line("All simulated clients are homogeneous; the paper's ten bars")
    report.line("are statistically identical, so one bar per mode is shown.")
    rows = []
    for client in range(1, 11):
        rows.append([f"C{client}", f"{one:.0f}", f"{two:.0f}"])
    report.table(["client", "1-sided KIOPS (paper ~400)",
                  "2-sided KIOPS (paper ~327)"], rows)

    assert one == pytest.approx(400, rel=0.03)
    assert two == pytest.approx(327, rel=0.03)
    # the paper's observation: two-sided is ~20% lower
    assert two / one == pytest.approx(0.82, abs=0.05)
