"""Fig. 19: the highest-reservation client's per-period completions
when congestion stops (Set 4, underestimation).

Every client keeps meeting its reservation throughout (removing load
cannot hurt).  Uniform: C1's completions rise with the growing global
pool.  Zipf: C1 stays near its reservation — the recovered capacity is
consumed by the low-reservation clients, exactly the paper's
observation.
"""

import pytest

from conftest import SET4_SWITCH


@pytest.mark.parametrize("distribution", ["uniform", "zipf"])
def test_fig19_c1_completions_under_relief(benchmark, report, set4_runs,
                                           distribution):
    reservations, result, _cluster = benchmark.pedantic(
        lambda: set4_runs(False, distribution), rounds=1, iterations=1
    )

    series = result.client_kiops_series("C1")
    r1 = reservations[0] / 1000.0
    report.line(f"Fig. 19 ({distribution}): C1 per-period completions "
                f"(KIOPS), reservation {r1:.0f}; congestion stops at "
                f"period {SET4_SWITCH + 1}")
    report.table(
        ["period", "C1 KIOPS", "meets reservation"],
        [[i + 1, f"{v:.0f}", "yes" if v >= r1 * 0.99 else "NO"]
         for i, v in enumerate(series)],
    )

    # C1 meets its reservation in (almost) every period; relief never hurts
    misses = sum(1 for v in series if v < r1 * 0.97)
    assert misses <= 1

    before = series[: SET4_SWITCH - 1]
    after = series[-5:]
    mean_before = sum(before) / len(before)
    mean_after = sum(after) / len(after)
    if distribution == "uniform":
        # the extra capacity reaches C1 (equal reservations, fair pool)
        assert mean_after > mean_before * 1.03
    else:
        # zipf: the extra global tokens go to the low-reservation clients;
        # C1 stays near its pre-relief level (within 10%)
        assert mean_after < mean_before * 1.10
