"""Fig. 8: bare-system completions under demand distributions and
request patterns (Experiment 1C).

(a) uniform demand + burst: everyone completes ~157 K, total ~1570 K.
(b) spike demand + burst: total drops to ~1380 K and the three
    340 K-demand clients complete only ~278 K.
(c) spike demand + constant-rate: recovery to ~1564 K with the heavy
    clients near their 340 K targets.
"""

import pytest

from repro.cluster.experiment import run_experiment
from repro.cluster.scenarios import bare_cluster
from repro.workloads.patterns import RequestPattern

from conftest import SHAPE_SCALE

UNIFORM = [158_000] * 10
SPIKE = [340_000] * 3 + [80_000] * 7  # total 1580 K, the paper's setup


def run_case(demands, pattern):
    cluster = bare_cluster(demands=demands, pattern=pattern, scale=SHAPE_SCALE)
    return run_experiment(cluster, warmup_periods=2, measure_periods=8)


def test_fig08_demand_and_pattern_matrix(benchmark, report):
    def run():
        a = run_case(UNIFORM, RequestPattern.BURST)
        b = run_case(SPIKE, RequestPattern.BURST)
        c = run_case(SPIKE, RequestPattern.CONSTANT_RATE)
        return a, b, c

    a, b, c = benchmark.pedantic(run, rounds=1, iterations=1)

    for label, demands, result, paper_total in (
        ("(a) uniform + burst", UNIFORM, a, 1570),
        ("(b) spike + burst", SPIKE, b, 1380),
        ("(c) spike + constant-rate", SPIKE, c, 1564),
    ):
        report.line(f"Fig. 8{label}: total {result.total_kiops():.0f} KIOPS "
                    f"(paper ~{paper_total} K)")
        report.table(
            ["client", "demand KIOPS", "completed KIOPS"],
            [
                [f"C{i+1}", f"{demands[i]/1000:.0f}",
                 f"{result.client_kiops(f'C{i+1}'):.0f}"]
                for i in range(10)
            ],
        )
        report.line()

    # (a): equal completion at saturation
    assert a.total_kiops() == pytest.approx(1570, rel=0.03)
    for i in range(10):
        assert a.client_kiops(f"C{i+1}") == pytest.approx(157, rel=0.05)

    # (b): throughput collapse and heavy-client starvation
    assert b.total_kiops() < 1480
    for i in range(3):
        assert b.client_kiops(f"C{i+1}") < 320
    for i in range(3, 10):
        assert b.client_kiops(f"C{i+1}") == pytest.approx(80, rel=0.05)

    # (c): constant rate restores both totals and heavy clients
    assert c.total_kiops() == pytest.approx(1564, rel=0.03)
    for i in range(3):
        assert c.client_kiops(f"C{i+1}") == pytest.approx(340, rel=0.05)

    # orderings the paper calls out
    assert c.total_kiops() > b.total_kiops()
    assert c.client_kiops("C1") > b.client_kiops("C1") + 30
