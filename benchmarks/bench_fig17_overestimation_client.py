"""Fig. 17: the highest-reservation client's per-period completions
when congestion begins (Set 4, overestimation).

Uniform: C1 steps down to a lower, stable level but keeps meeting its
reservation.  Zipf: C1 *misses* its reservation right after the change
(overcommitted global tokens compete with its reservation I/Os), then
recovers over a few periods as the estimate adapts.
"""

import pytest

from conftest import SET4_SWITCH


@pytest.mark.parametrize("distribution", ["uniform", "zipf"])
def test_fig17_c1_completions_under_onset(benchmark, report, set4_runs,
                                          distribution):
    reservations, result, _cluster = benchmark.pedantic(
        lambda: set4_runs(True, distribution), rounds=1, iterations=1
    )

    series = result.client_kiops_series("C1")
    r1 = reservations[0] / 1000.0
    report.line(f"Fig. 17 ({distribution}): C1 per-period completions "
                f"(KIOPS), reservation {r1:.0f}; congestion starts at "
                f"period {SET4_SWITCH + 1}")
    report.table(
        ["period", "C1 KIOPS", "meets reservation"],
        [[i + 1, f"{v:.0f}", "yes" if v >= r1 * 0.99 else "NO"]
         for i, v in enumerate(series)],
    )

    before = series[: SET4_SWITCH - 1]
    tail = series[-5:]
    # before the change C1 exceeds its reservation (it also wins pool tokens)
    assert min(before) >= r1 * 0.99
    # after adaptation C1 meets its reservation again
    assert sum(tail) / len(tail) >= r1 * 0.97
    if distribution == "uniform":
        # uniform: C1 settles at a lower level but never dips far below R
        assert min(series[SET4_SWITCH:]) >= r1 * 0.9
    else:
        # zipf: the transient dip below the reservation is visible...
        transient = series[SET4_SWITCH: SET4_SWITCH + 6]
        assert min(transient) < r1
        # ...and the recovery brings it back
        assert max(tail) >= r1
