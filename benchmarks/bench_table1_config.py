"""Table I: hardware configuration (simulated substitutes).

Prints the paper's testbed table next to the simulator's calibrated
equivalents, and verifies the calibration constants are wired through.
"""

from repro.cluster.calibration import CHAMELEON
from repro.rdma.cpu import CPUProfile
from repro.rdma.fabric import DEFAULT_PROP_DELAY
from repro.rdma.nic import NICProfile


def test_table1_configuration(benchmark, report):
    def collect():
        nic = NICProfile.chameleon()
        cpu = CPUProfile()
        return nic, cpu

    nic, cpu = benchmark.pedantic(collect, rounds=1, iterations=1)

    report.line("Paper Table I vs simulated substitutes")
    report.table(
        ["component", "paper (Chameleon)", "this reproduction"],
        [
            ["CPU", "Intel Xeon E5-2670 v3, 48 cores",
             f"serial RPC pipeline, {cpu.rpc_cost(4096)*1e6:.3f} us / 4KB RPC"],
            ["Memory", "128 GB", "page-sparse simulated address space"],
            ["NIC", "Mellanox ConnectX-3 (MT27500)",
             "calibrated RNIC pipelines (see below)"],
            ["Network", "InfiniBand",
             f"flat fabric, {DEFAULT_PROP_DELAY*1e6:.1f} us propagation"],
        ],
    )
    report.line()
    report.line("Calibration (paper Sec. III-B measured knees):")
    report.table(
        ["quantity", "paper", "simulated profile"],
        [
            ["1-sided client saturation C_L", "400 KIOPS",
             f"{1e-3/2.5e-6:.0f} KIOPS (2.5 us issue cost)"],
            ["1-sided system saturation C_G", "1570 KIOPS",
             f"{CHAMELEON.one_sided_system/1000:.0f} KIOPS"],
            ["2-sided client saturation", "327 KIOPS",
             f"{CHAMELEON.two_sided_client/1000:.0f} KIOPS"],
            ["2-sided system saturation", "427 KIOPS",
             f"{CHAMELEON.two_sided_system/1000:.0f} KIOPS"],
        ],
    )

    # the calibrated profile must encode the paper's constants exactly
    from repro.common.types import OpType
    from repro.rdma.verbs import WorkRequest

    read4k = WorkRequest(opcode=OpType.READ, size=4096)
    assert abs(1.0 / nic.issue_cost(read4k) - CHAMELEON.one_sided_client) < 1e3
    assert abs(1.0 / nic.target_cost(read4k) - CHAMELEON.one_sided_system) < 2e3
