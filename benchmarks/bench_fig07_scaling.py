"""Fig. 7: data-node throughput versus number of active clients.

One-sided throughput climbs linearly to ~4 clients then saturates at
~1570 KIOPS; two-sided flattens almost immediately at ~427 KIOPS.
"""

import pytest

from repro.common.types import AccessMode
from repro.cluster.experiment import run_experiment
from repro.cluster.scenarios import SATURATING_OPS, bare_cluster

from conftest import SWEEP_SCALE


def system_kiops(num_clients: int, access: AccessMode) -> float:
    cluster = bare_cluster(
        demands=[SATURATING_OPS] * num_clients,
        scale=SWEEP_SCALE,
        access=access,
    )
    result = run_experiment(cluster, warmup_periods=1, measure_periods=4)
    return result.total_kiops()


def test_fig07_throughput_vs_active_clients(benchmark, report):
    def run():
        one = [system_kiops(n, AccessMode.ONE_SIDED) for n in range(1, 11)]
        two = [system_kiops(n, AccessMode.TWO_SIDED) for n in range(1, 11)]
        return one, two

    one, two = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line("System throughput vs number of active clients (KIOPS)")
    report.table(
        ["clients", "1-sided", "2-sided"],
        [[n + 1, f"{one[n]:.0f}", f"{two[n]:.0f}"] for n in range(10)],
    )

    # linear region: first four one-sided points scale with n
    for n in range(4):
        assert one[n] == pytest.approx(400 * (n + 1), rel=0.05)
    # saturation at ~1570 from 4 clients on
    for n in range(3, 10):
        assert one[n] == pytest.approx(1570, rel=0.03)
    # two-sided: one client almost saturates, two clients do
    assert two[0] == pytest.approx(327, rel=0.03)
    for n in range(1, 10):
        assert two[n] == pytest.approx(427, rel=0.03)
    # the knee the paper highlights: 4 clients needed one-sided, ~1 two-sided
    assert one[3] / one[0] > 3.5
    assert two[1] / two[0] < 1.5
