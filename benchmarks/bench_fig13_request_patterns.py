"""Fig. 13: completions under Haechi with the Spike reservation
distribution, burst vs constant-rate requests (Set 3).

C1-C3 reserve 285 KIOPS, C4-C10 reserve 80 KIOPS; 90% of capacity is
reserved.  With completion-gated burst requests the high-reservation
clients *miss* their reservations (the Experiment-1C local-capacity
effect); with constant-rate requests they meet and surpass them.
"""

import pytest

from repro.cluster.experiment import run_experiment
from repro.cluster.scenarios import qos_cluster
from repro.workloads.patterns import BURST_WINDOW, RequestPattern
from repro.workloads.reservations import spike_distribution

from conftest import SHAPE_SCALE

RESERVATIONS = spike_distribution(10, 285_000, 80_000)
# demand: reservation plus a proportional slice of the unreserved 10%
DEMANDS = [r / 0.9 for r in RESERVATIONS]
PERIODS = 10


def run_pattern(pattern):
    window = BURST_WINDOW if pattern is RequestPattern.BURST else None
    cluster = qos_cluster(
        reservations=RESERVATIONS,
        demands=DEMANDS,
        pattern=pattern,
        window=window,
        scale=SHAPE_SCALE,
    )
    return run_experiment(cluster, warmup_periods=3, measure_periods=PERIODS)


def test_fig13_burst_vs_constant_rate(benchmark, report):
    def run():
        return (run_pattern(RequestPattern.BURST),
                run_pattern(RequestPattern.CONSTANT_RATE))

    burst, rate = benchmark.pedantic(run, rounds=1, iterations=1)

    report.line("Fig. 13: Spike reservations (3 x 285 K + 7 x 80 K), KIOPS")
    report.table(
        ["client", "reservation", "burst", "constant-rate"],
        [
            [f"C{i+1}", f"{RESERVATIONS[i]/1000:.0f}",
             f"{burst.client_kiops(f'C{i+1}'):.0f}",
             f"{rate.client_kiops(f'C{i+1}'):.0f}"]
            for i in range(10)
        ],
    )

    for i in range(3):
        name = f"C{i+1}"
        # burst: the high-reservation clients fall short
        assert burst.client_kiops(name) * 1000 < RESERVATIONS[i] * 0.99
        # constant-rate: they meet and surpass
        assert rate.client_kiops(name) * 1000 >= RESERVATIONS[i]
    for i in range(3, 10):
        # the low-reservation clients meet theirs under both patterns
        assert burst.client_kiops(f"C{i+1}") * 1000 >= RESERVATIONS[i] * 0.99
        assert rate.client_kiops(f"C{i+1}") * 1000 >= RESERVATIONS[i] * 0.99
