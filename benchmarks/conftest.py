"""Shared benchmark infrastructure.

Every bench regenerates one of the paper's tables/figures: it runs the
scenario on the simulated testbed, prints the same rows/series the
paper reports (in KIOPS, directly comparable), asserts the paper's
*shape* criteria, and appends the output to ``benchmarks/results/``.

Scales: shape-critical figures run at time dilation K=200 (10 ms QoS
periods, 200 protocol ticks per period); broad sweeps use K=500 to
keep the suite's wall time reasonable.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.cluster.scale import SimScale

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Shape-critical figures (patterns, conversion, adaptation).
SHAPE_SCALE = SimScale(factor=200, interval_divisor=200)
# Parameter sweeps (many runs, coarser dilation).
SWEEP_SCALE = SimScale(factor=500, interval_divisor=100)

# Paper constants (Sec. III).
TOTAL_CAPACITY = 1_570_000  # C_G, one-sided, ops/s
CLIENT_CAPACITY = 400_000  # C_L, one-sided, ops/s
NUM_CLIENTS = 10

# Parallel sweep execution (repro.cluster.runner): workers default to 1
# (serial, exactly the historical behaviour); exporting
# REPRO_BENCH_WORKERS=4 fans sweep cells out across processes, and
# REPRO_BENCH_CACHE=<dir> memoizes cells across runs.  Worker count
# never changes results — the runner merges in input-cell order and
# every cell is a deterministic simulation.
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE") or None


def run_sweep_cells(cells):
    """Run runner cells honoring the env-var worker/cache settings."""
    from repro.cluster.runner import run_cells

    return run_cells(cells, workers=BENCH_WORKERS, cache_dir=BENCH_CACHE)


class Report:
    """Collects lines for one figure, echoes them, persists them."""

    def __init__(self, name: str):
        self.name = name
        self.lines = []

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, header, rows) -> None:
        from repro.analysis import format_table

        for line in format_table(header, rows):
            self.line(line)

    def flush(self) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n".join([f"== {self.name} ==", *self.lines, ""])
        (RESULTS_DIR / f"{self.name}.txt").write_text(text)
        print("\n" + text)
        return text


@pytest.fixture
def report(request):
    """A per-test report named after the test module."""
    name = request.node.name.replace("test_", "").replace("[", "_").rstrip("]")
    rep = Report(name)
    yield rep
    rep.flush()


# ---------------------------------------------------------------------------
# Set 4 (Figs. 16-19): shared scenario runner with a session-wide cache,
# since all four figures are projections of the same two timeline runs.
# ---------------------------------------------------------------------------

SET4_RESERVED_FRACTION = 0.8  # the paper reserves 80% in Set 4
SET4_BG_RATE = 200_000  # ops/s of unmanaged traffic (~13% of capacity)
SET4_PERIODS = 30  # measured periods, like the paper's 30 s display
SET4_SWITCH = 15  # congestion starts/stops at period 15


def run_set4_scenario(onset: bool, distribution: str):
    """One Set-4 timeline run; returns (reservations, result, cluster)."""
    from repro.cluster.experiment import run_experiment
    from repro.cluster.scenarios import (
        congestion_schedule,
        paper_demands,
        qos_cluster,
        reservation_set,
    )

    reserved = SET4_RESERVED_FRACTION * TOTAL_CAPACITY
    pool = TOTAL_CAPACITY - reserved
    reservations = reservation_set(distribution, reserved)
    cluster = qos_cluster(
        reservations=reservations,
        demands=paper_demands(reservations, pool),
        scale=SHAPE_SCALE,
    )
    warmup = 2
    schedule = congestion_schedule(
        onset, SET4_SWITCH + warmup, SET4_PERIODS + warmup + 2,
        cluster.config.period,
    )
    cluster.add_background_job(schedule=schedule, rate_ops=SET4_BG_RATE)
    result = run_experiment(cluster, warmup_periods=warmup,
                            measure_periods=SET4_PERIODS)
    return reservations, result, cluster


@pytest.fixture(scope="session")
def set4_runs():
    """Lazy cache keyed by (onset, distribution)."""
    cache = {}

    def get(onset: bool, distribution: str):
        key = (onset, distribution)
        if key not in cache:
            cache[key] = run_set4_scenario(onset, distribution)
        return cache[key]

    return get
