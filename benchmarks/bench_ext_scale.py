"""Extension (scale): fluid-approximation fast path vs the exact DES.

The clients-vs-wall-clock curve that justifies the fluid engine
(docs/SCALE.md): the exact DES pays per-op event costs, so its wall
time grows with the client population; the fluid engine aggregates
same-class clients into rate flows, so its wall time tracks the *flow*
count and stays near-constant from 10^3 to 10^6 simulated clients.
The bench times both, checks the issue's <60 s bound at 10^5 clients,
and confirms the speed did not cost the answers by running the
down-scaled fluid-vs-DES equivalence check.
"""

import time

import pytest

from repro.cluster.experiment import run_experiment
from repro.cluster.scale import SimScale
from repro.cluster.scenarios import paper_demands, qos_cluster, reservation_set
from repro.fluid.scenario import run_fluid_scale
from repro.fluid.validate import run_equivalence

# Same dilation as the chaos/hunt harnesses: 1 ms periods, 20 us ticks.
DES_SCALE = SimScale(factor=1000, interval_divisor=50)
DES_CLIENTS = (2, 4, 8)
FLUID_CLIENTS = (1_000, 10_000, 100_000, 1_000_000)
PERIODS = 10
CAPACITY = 1_570_000  # C_G, one-sided, ops/s
RESERVED_FRACTION = 0.7


def time_des(num_clients: int) -> float:
    """Wall seconds for one exact-DES run of ``num_clients`` clients."""
    # Stay under the per-client C_L admission cap for small counts.
    total = min(RESERVED_FRACTION * CAPACITY, num_clients * 350_000)
    reservations = reservation_set("uniform", total, num_clients)
    demands = paper_demands(reservations, CAPACITY - total)
    cluster = qos_cluster(
        reservations=reservations, demands=demands, scale=DES_SCALE,
    )
    started = time.perf_counter()
    run_experiment(cluster, warmup_periods=0, measure_periods=PERIODS)
    return time.perf_counter() - started


def time_fluid(num_clients: int) -> float:
    """Wall seconds for one fluid run of ``num_clients`` clients."""
    started = time.perf_counter()
    run_fluid_scale(
        num_clients=num_clients, periods=PERIODS, seed=11,
        brownout=False, resize=False,
    )
    return time.perf_counter() - started


def run():
    des = [(n, time_des(n)) for n in DES_CLIENTS]
    fluid = [(n, time_fluid(n)) for n in FLUID_CLIENTS]
    equivalence = run_equivalence(11)
    return des, fluid, equivalence


def test_ext_scale_curve(benchmark, report):
    des, fluid, equivalence = benchmark.pedantic(run, rounds=1, iterations=1)

    # Per-client-period DES cost, from the largest measured DES run.
    n_des, wall_des = des[-1]
    des_unit = wall_des / (n_des * PERIODS)
    rows = []
    for n, wall in des:
        rows.append(["DES (exact)", f"{n}", f"{wall:.3f}", "-"])
    for n, wall in fluid:
        extrapolated = des_unit * n * PERIODS
        rows.append(["fluid", f"{n}", f"{wall:.3f}",
                     f"{extrapolated / max(wall, 1e-9):.0f}x"])
    report.line(f"clients vs wall-clock, {PERIODS} periods "
                "(speedup = extrapolated DES time / fluid time)")
    report.table(["mode", "clients", "wall (s)", "speedup"], rows)
    report.line(f"equivalence seed 11: max attainment error "
                f"{equivalence['max_error']:.4f} "
                f"(tier {equivalence['tolerance_tier']:.2f}), "
                f"{len(equivalence['who_wins_reversals'])} who-wins "
                "reversal(s)")

    fluid_wall = dict(fluid)
    # The issue's headline bound: >= 10^5 clients in < 60 s, with slack
    # to spare even on slow CI runners.
    assert fluid_wall[100_000] < 60.0
    # The fluid path must beat the DES's extrapolated cost at scale by
    # orders of magnitude (the curve is the point of the subsystem).
    assert des_unit * 100_000 * PERIODS > 100 * fluid_wall[100_000]
    # And the speed cannot cost the answers.
    assert equivalence["ok"], equivalence
