"""Extension: QoS under injected faults (robustness evaluation).

Haechi's control plane rides on the same lossy fabric it manages, so
the interesting question is what 1-10% control-op loss does to the
guarantees.  Two scenarios:

- **Control-loss sweep**: 3 clients, every control op (FAAs, report
  WRITEs, QoS SENDs) dropped at 1/5/10%.  The hardened engines retry
  with capped backoff; throughput must stay within 80% of the
  fault-free run per client and reservations must keep being met.
- **Client crash + redistribution**: one client goes dark mid-run; the
  monitor's liveness lease evicts it and its reservation flows back to
  the global pool, which the survivors — capacity-starved before the
  crash — must visibly absorb.

Both runs are seeded end to end: same plan + same seed reproduces the
same fault sequence and the same counters.
"""

import pytest

from repro.cluster.metrics import robustness_summary
from repro.cluster.experiment import run_experiment
from repro.cluster.scenarios import faulty_qos_cluster, qos_cluster

from conftest import SWEEP_SCALE, CLIENT_CAPACITY

NUM = 3
NUM_CRASH = 5  # 5 x 400 K demand > 1570 K capacity: the pool is contested
RESERVATION = 250_000
DEMAND = CLIENT_CAPACITY  # saturate each client's local limit
DROP_RATES = (0.01, 0.05, 0.10)
PERIODS = 8
WARMUP = 2
SEED = 7


def run_lossy(rate):
    reservations = [RESERVATION] * NUM
    demands = [DEMAND] * NUM
    if rate == 0.0:
        cluster = qos_cluster(reservations, demands, scale=SWEEP_SCALE,
                              master_seed=SEED)
    else:
        cluster = faulty_qos_cluster(
            reservations, demands,
            kind="control-loss",
            fault_seed=SEED,
            fault_kwargs={"rate": rate},
            scale=SWEEP_SCALE,
            master_seed=SEED,
        )
    result = run_experiment(cluster, warmup_periods=WARMUP,
                            measure_periods=PERIODS)
    return cluster, result


def run_crash():
    """Contested pool (5 saturating clients), one crashes, is evicted."""
    cluster = faulty_qos_cluster(
        [RESERVATION] * NUM_CRASH, [DEMAND] * NUM_CRASH,
        kind="client-crash",
        fault_seed=SEED,
        fault_kwargs={"client": NUM_CRASH - 1, "start_period": WARMUP + 3},
        scale=SWEEP_SCALE,
        master_seed=SEED,
    )
    result = run_experiment(cluster, warmup_periods=WARMUP,
                            measure_periods=12)
    return cluster, result


def test_ext_faults(benchmark, report):
    def run():
        sweep = {rate: run_lossy(rate) for rate in (0.0,) + DROP_RATES}
        return sweep, run_crash()

    sweep, (crash_cluster, crash_result) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    names = [f"C{i + 1}" for i in range(NUM)]
    report.line(f"Control-op loss sweep: {NUM} clients, reservation "
                f"{RESERVATION / 1000:.0f} K, demand {DEMAND / 1000:.0f} K "
                "(KIOPS)")
    rows = []
    for rate, (cluster, result) in sweep.items():
        summary = robustness_summary(cluster)
        dropped = summary.get("faults", {}).get("dropped_total", 0)
        rows.append([
            f"{rate:.0%}",
            *[f"{result.client_kiops(n):.0f}" for n in names],
            f"{result.total_kiops():.0f}",
            str(dropped),
            str(summary["faa_failures_total"]),
        ])
    report.table(["drop rate", *names, "total", "ops dropped",
                  "faa failures"], rows)

    _, baseline = sweep[0.0]
    for rate in DROP_RATES:
        cluster, result = sweep[rate]
        for name in names:
            served = result.client_kiops(name)
            # headline criterion: lossy control plane costs < 20%
            assert served >= 0.8 * baseline.client_kiops(name), (
                f"{name} at {rate:.0%} loss: {served:.0f} KIOPS < 80% "
                f"of fault-free {baseline.client_kiops(name):.0f}")
            # reservations keep being met by live clients
            assert served * 1000 >= 0.95 * RESERVATION
        # faults actually happened and were absorbed, not avoided
        assert cluster.fault_injector.dropped["control-loss"] > 0
        assert robustness_summary(cluster)["faa_failures_total"] > 0

    report.line()
    report.line(f"Crash + lease eviction: {NUM_CRASH} saturating clients "
                "contest the pool; one crashes and its 250 K reservation "
                "must flow to the survivors")
    monitor = crash_cluster.monitor
    assert len(monitor.evictions) == 1
    eviction = monitor.evictions[0]
    assert eviction["client"] == NUM_CRASH - 1
    # evicted within lease_periods (+1 for the partially-dark period)
    lease = crash_cluster.config.lease_periods
    crash_period = WARMUP + 3 + 1  # monitor periods are 1-based
    assert eviction["period"] <= crash_period + lease + 1
    # the reservation observably left the books...
    assert monitor.total_reserved == pytest.approx(
        (NUM_CRASH - 1) * RESERVATION * crash_cluster.config.period, rel=0.01)

    # ...and the survivors' throughput rose once the pool re-absorbed it
    per_client = [r["per_client"] for r in monitor.period_records]
    pre = [r for r in per_client[crash_period - 2:crash_period]]
    post = [r for r in per_client[-3:]]
    for idx in range(NUM_CRASH - 1):
        pre_mean = sum(p[idx] for p in pre) / len(pre)
        post_mean = sum(p[idx] for p in post) / len(post)
        report.line(f"  C{idx + 1}: {pre_mean:.0f} -> {post_mean:.0f} "
                    "tokens/period")
        assert post_mean > 1.1 * pre_mean, (
            f"survivor C{idx + 1} did not absorb the freed reservation "
            f"({pre_mean:.0f} -> {post_mean:.0f})")
    report.line(f"  evicted C{NUM_CRASH} at period {eviction['period']} "
                f"(crash at {crash_period}); stale reports: "
                f"{monitor.stale_reports}")
