"""Extension: data-path recovery (replicated node + client failover).

The tentpole robustness scenario: four clients with hard reservations
run one-sided reads against the primary data node, the primary is
killed mid-run and never comes back.  Every client must detect the
crash, fail over to the warm replica, re-register with the replica's
monitor, and resume one-sided I/O — all within the configured bound
(failover_bound_periods QoS periods).  Reported against a no-fault
baseline:

- **time-to-recover** per client (suspect entry -> engine rebound);
- **throughput dip** depth and width around the crash period;
- **post-failover fairness**: per-client service on the replica vs the
  same clients in the fault-free run (reservations must keep being
  met, and equally).
"""

import math

import pytest

from repro.cluster.experiment import attach_app, run_experiment
from repro.cluster.metrics import robustness_summary
from repro.faults import CrashWindow, FaultPlan
from repro.recovery import build_replicated_cluster
from repro.recovery.failover import FailoverState
from repro.workloads.patterns import RequestPattern

from conftest import SWEEP_SCALE

NUM = 4
RESERVATION = 250_000  # ops/s each: 1 M total, well under C_G
PERIODS = 12
WARMUP = 2
CRASH_PERIOD = WARMUP + 4  # absolute period of the kill
TAIL = 4  # fairness window: the last TAIL measured periods
SEED = 7


def run_one(crash: bool):
    cluster = build_replicated_cluster(
        num_clients=NUM,
        reservations_ops=[float(RESERVATION)] * NUM,
        scale=SWEEP_SCALE,
        master_seed=SEED,
    )
    for ctx in cluster.clients:
        attach_app(cluster, ctx, RequestPattern.BURST,
                   demand_ops=float(RESERVATION), window=None)
    if crash:
        T = cluster.config.period
        cluster.inject_faults(FaultPlan(
            crashes=(CrashWindow("server", CRASH_PERIOD * T, math.inf),),
            drop_fail_after=cluster.config.check_interval,
        ), seed=SEED)
    result = run_experiment(cluster, warmup_periods=WARMUP,
                            measure_periods=PERIODS)
    return cluster, result


def tail_rate(result, name):
    """Mean served ops/s over the last TAIL measured periods."""
    counts = result.client_period_counts[name][-TAIL:]
    return sum(counts) / len(counts) / result.period


def test_ext_recovery(benchmark, report):
    runs = benchmark.pedantic(
        lambda: (run_one(crash=False), run_one(crash=True)),
        rounds=1, iterations=1,
    )
    (base_cluster, base), (cluster, faulted) = runs
    T = cluster.config.period
    names = [f"C{i + 1}" for i in range(NUM)]
    crash_idx = CRASH_PERIOD - WARMUP  # index into the measured window

    report.line(f"Primary kill at period {CRASH_PERIOD} (measured index "
                f"{crash_idx}): {NUM} clients, {RESERVATION / 1000:.0f} K "
                "reserved each, replicated data node")
    report.line()

    # -- time-to-recover --------------------------------------------------
    report.line("Time to recover (suspect -> engine rebound on replica):")
    bound = cluster.recovery.failover_bound_periods * T
    durations = []
    for ctx in cluster.clients:
        manager = ctx.failover
        assert manager.state is FailoverState.FAILED_OVER, (
            f"{ctx.name} ended in {manager.state}, not FAILED_OVER")
        duration = manager.last_failover_duration
        durations.append(duration)
        report.line(f"  {ctx.name}: {duration * 1e3:.3f} ms "
                    f"({duration / T:.3f} periods, bound "
                    f"{cluster.recovery.failover_bound_periods:.1f})")
        assert duration <= bound
    report.line()

    # -- throughput dip ---------------------------------------------------
    base_mean = sum(base.period_totals) / len(base.period_totals)
    dip = min(faulted.period_totals[crash_idx:])
    recovered_from = None
    for i in range(crash_idx, len(faulted.period_totals)):
        if faulted.period_totals[i] >= 0.9 * base_mean:
            recovered_from = i
            break
    report.line("Per-period total KIOPS (measured window):")
    report.table(
        ["run", *[str(i) for i in range(len(faulted.period_totals))]],
        [
            ["no-fault", *[f"{c / T / 1000:.0f}" for c in base.period_totals]],
            ["crash", *[f"{c / T / 1000:.0f}"
                        for c in faulted.period_totals]],
        ],
    )
    report.line(f"  dip: {dip / T / 1000:.0f} KIOPS "
                f"({dip / base_mean:.0%} of baseline mean); back above 90% "
                f"at measured period {recovered_from}")
    assert recovered_from is not None
    # the dip is one period wide: the crash period itself may lose its
    # burst, but the very next period already runs on the replica
    assert recovered_from <= crash_idx + 1

    # -- post-failover fairness ------------------------------------------
    report.line()
    report.line(f"Post-failover service, last {TAIL} periods (ops/s):")
    rows = []
    for name in names:
        served = tail_rate(faulted, name)
        served_base = tail_rate(base, name)
        rows.append([name, f"{served_base:.0f}", f"{served:.0f}",
                     f"{served / served_base:.3f}"])
        # reservations keep being met on the replica...
        assert served >= 0.95 * RESERVATION
        # ...at parity with the fault-free run
        assert served == pytest.approx(served_base, rel=0.05)
    report.table(["client", "no-fault", "post-failover", "ratio"], rows)
    tails = [tail_rate(faulted, n) for n in names]
    fairness = min(tails) / max(tails)
    report.line(f"  min/max fairness across clients: {fairness:.3f}")
    assert fairness >= 0.95

    # -- protocol accounting ---------------------------------------------
    summary = robustness_summary(cluster)
    report.line()
    report.line(f"  failovers: {summary['failovers_total']}, "
                f"re-registrations: {summary['re_registrations_total']}, "
                f"replica rejoins: "
                f"{len(summary['replica_monitor']['rejoins'])}, "
                f"stale control msgs dropped: "
                + str(sum(e["stale_control_messages"]
                          for e in summary["engines"].values())))
    assert summary["failovers_total"] == NUM
    assert len(summary["replica_monitor"]["rejoins"]) == NUM
    # the baseline never touched the recovery machinery
    assert robustness_summary(base_cluster).get("failovers_total", 0) == 0
